//! The daemon's store engine, factored out of the connection plumbing
//! and generic over [`StoreFs`].
//!
//! [`StoreCore`] owns everything a serve run mutates between commits:
//! the lazily created [`ShardedStoreWriter`], the committed
//! [`StoreReader`], the read-your-writes overlay, and the write-ahead
//! journal ([`WalSet`]) behind the durability contract. The daemon
//! wraps these methods in its mutex, phase clocks, and counters; the
//! crash-injection harness drives the *same* methods directly over a
//! fault-injecting filesystem, so the sweep exercises byte-for-byte
//! the fs-op sequence a real daemon performs — without a TCP stack in
//! the reproduction loop.
//!
//! # Durable put sequence
//!
//! ```text
//! store_put     — hand the payload to the sharded writer (may fail)
//! wal_append    — journal the record and fsync it     (ack barrier)
//! overlay_insert — make it read-your-writes visible
//! commit        — when over threshold / on shutdown
//! ```
//!
//! The journal append comes *after* the writer put so a put the
//! daemon rejects with `ServerError` is never resurrected by replay;
//! the ack only ever happens after `wal_append` returns, which is the
//! "acked means durable" barrier.

use crate::wal::{WalRecord, WalSet};
use isobar::trace::{TraceTag, NO_CHUNK};
use isobar::{IsobarOptions, TelemetrySnapshot};
use isobar_store::{
    RealFs, ShardedOptions, ShardedStoreWriter, StoreError, StoreFs, StoreReader, MANIFEST_FILE,
};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Store-side tuning for [`StoreCore`], the subset of `ServeOptions`
/// the engine needs.
#[derive(Debug, Clone)]
pub struct CoreOptions {
    /// Compression options for stored variables.
    pub isobar: IsobarOptions,
    /// Shards per store generation.
    pub shards: u16,
    /// Bounded queue depth between producer and each shard.
    pub queue_depth: usize,
    /// Overlay size that triggers a generation commit.
    pub commit_threshold: u64,
    /// Journal puts (fsync before ack) and replay leftover journals on
    /// open. Off restores the pre-WAL contract: a crash between
    /// commits loses acked-but-uncommitted puts.
    pub wal: bool,
    /// Open the committed [`StoreReader`] view (on open and after each
    /// commit). The reader maps real files, so fault-injecting
    /// filesystems run with this off and verify through a separate
    /// real-fs open.
    pub open_reader: bool,
}

impl Default for CoreOptions {
    fn default() -> Self {
        CoreOptions {
            isobar: IsobarOptions::default(),
            shards: 4,
            queue_depth: 2,
            commit_threshold: 64 << 20,
            wal: true,
            open_reader: true,
        }
    }
}

/// One uncommitted put held for read-your-writes.
pub struct OverlayEntry {
    /// Element width in bytes.
    pub width: u8,
    /// Raw payload.
    pub data: Vec<u8>,
}

/// What journal replay found on open.
#[derive(Debug, Default, Clone)]
pub struct ReplaySummary {
    /// Records replayed into the overlay.
    pub records: u64,
    /// Journal files found.
    pub files: u64,
    /// Bytes dropped by torn-tail / corruption resync.
    pub skipped_bytes: u64,
}

/// What a generation commit produced.
pub struct CommitOutcome {
    /// Generation number the manifest now carries.
    pub generation: u64,
    /// Telemetry from the closed writer's codec/I/O threads.
    pub telemetry: TelemetrySnapshot,
    /// Journal files retired now that their records are committed.
    pub wal_truncated: u64,
}

/// Where a [`StoreCore::get`] was answered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetSource {
    /// The uncommitted overlay (possibly WAL-replayed).
    Overlay,
    /// The committed reader.
    Committed,
}

/// The serve store engine: writer + reader + overlay + journal.
pub struct StoreCore<F: StoreFs + Clone>
where
    F::File: 'static,
{
    fs: F,
    dir: PathBuf,
    opts: CoreOptions,
    writer: Option<ShardedStoreWriter<F>>,
    /// Committed view; `None` before the first commit of a fresh store
    /// or when `open_reader` is off.
    pub reader: Option<StoreReader>,
    /// Read-your-writes cache of uncommitted puts, keyed by
    /// `(step, store key)`.
    pub overlay: BTreeMap<(u32, String), OverlayEntry>,
    /// Bytes held in the overlay.
    pub pending_bytes: u64,
    /// Generation of the last commit this engine performed.
    pub last_generation: Option<u64>,
    wal: Option<WalSet<F>>,
    /// Keys replayed from the journal that no writer has seen yet;
    /// fed from the overlay when the next writer is created so they
    /// land in the next generation commit.
    unfed: Vec<(u32, String)>,
    /// What journal replay found when this engine opened.
    pub replay: ReplaySummary,
}

impl<F: StoreFs + Clone> StoreCore<F>
where
    F::File: 'static,
{
    /// Open the engine on `dir`: create the directory, open the
    /// committed view when one exists, and replay any leftover
    /// write-ahead journal into the overlay.
    pub fn open(fs: F, dir: impl AsRef<Path>, opts: CoreOptions) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs.create_dir_all(&dir)?;
        let reader = if opts.open_reader && dir.join(MANIFEST_FILE).exists() {
            Some(StoreReader::open(&dir)?)
        } else {
            None
        };
        let mut core = StoreCore {
            fs: fs.clone(),
            dir: dir.clone(),
            opts,
            writer: None,
            reader,
            overlay: BTreeMap::new(),
            pending_bytes: 0,
            last_generation: None,
            wal: None,
            unfed: Vec::new(),
            replay: ReplaySummary::default(),
        };
        if core.opts.wal {
            let _span = isobar::trace::span(TraceTag::ServeWalReplay, NO_CHUNK);
            let (wal, replay) = WalSet::open(fs, &dir)?;
            core.replay = ReplaySummary {
                records: replay.records.len() as u64,
                files: replay.files,
                skipped_bytes: replay.skipped_bytes,
            };
            for rec in replay.records {
                let key = crate::daemon::store_key(&rec.tenant, &rec.name);
                core.unfed.push((rec.step, key.clone()));
                core.overlay_insert(rec.step, key, rec.width, rec.payload);
            }
            // A key journaled twice (client retry, or a pre-crash
            // supersede) replays twice; the overlay keeps last-wins
            // and the writer feed below reads from the overlay, so
            // dedupe the feed list.
            core.unfed.sort();
            core.unfed.dedup();
            core.wal = Some(wal);
        }
        Ok(core)
    }

    /// Journal one put and fsync it. Once this returns the record is
    /// durable and the caller may ack. Returns the journaled frame
    /// bytes (0 when the journal is disabled).
    pub fn wal_append(
        &mut self,
        tenant: &str,
        step: u32,
        name: &str,
        width: u8,
        payload: &[u8],
    ) -> io::Result<u64> {
        let Some(wal) = &mut self.wal else {
            return Ok(0);
        };
        let rec = WalRecord {
            tenant: tenant.to_string(),
            step,
            name: name.to_string(),
            width,
            payload: payload.to_vec(),
        };
        Ok(wal.append(&rec)? as u64)
    }

    /// Hand one put to the sharded writer, creating the writer (and
    /// feeding it any WAL-replayed entries) on first use.
    pub fn store_put(
        &mut self,
        step: u32,
        key: &str,
        payload: Vec<u8>,
        width: usize,
    ) -> Result<(), StoreError> {
        self.ensure_writer()?;
        let writer = self.writer.as_ref().expect("writer just created");
        writer.put(step, key, payload, width)
    }

    fn ensure_writer(&mut self) -> Result<(), StoreError> {
        if self.writer.is_some() {
            return Ok(());
        }
        let writer = ShardedStoreWriter::create_in(
            self.fs.clone(),
            &self.dir,
            self.opts.isobar,
            ShardedOptions {
                shards: self.opts.shards,
                queue_depth: self.opts.queue_depth,
            },
        )?;
        // Replayed journal records exist only in the overlay until a
        // writer carries them into a generation.
        for (step, key) in std::mem::take(&mut self.unfed) {
            if let Some(entry) = self.overlay.get(&(step, key.clone())) {
                writer.put(step, &key, entry.data.clone(), usize::from(entry.width))?;
            }
        }
        self.writer = Some(writer);
        Ok(())
    }

    /// Insert one put into the read-your-writes overlay, superseding
    /// any earlier payload for the same `(step, key)`.
    pub fn overlay_insert(&mut self, step: u32, key: String, width: u8, data: Vec<u8>) {
        let len = data.len() as u64;
        if let Some(old) = self.overlay.insert((step, key), OverlayEntry { width, data }) {
            self.pending_bytes = self.pending_bytes.saturating_sub(old.data.len() as u64);
        }
        self.pending_bytes += len;
    }

    /// Whether the overlay has crossed the commit threshold.
    pub fn over_threshold(&self) -> bool {
        self.pending_bytes >= self.opts.commit_threshold
    }

    /// Commit the current generation: two-phase writer close, journal
    /// truncation, reader reopen, overlay drain. `Ok(None)` means
    /// nothing was pending. On error the engine must be considered
    /// poisoned by the caller — the journal is only truncated after a
    /// successful close, so acked puts survive the failure.
    pub fn commit(&mut self) -> Result<Option<CommitOutcome>, StoreError> {
        if self.writer.is_none() {
            if self.unfed.is_empty() {
                return Ok(None);
            }
            // Replayed entries with no subsequent put still need a
            // generation of their own (e.g. replay directly into
            // shutdown).
            self.ensure_writer()?;
        }
        let writer = self.writer.take().expect("checked above");
        let report = writer.close()?;
        self.last_generation = Some(report.generation);
        // The manifest now owns every journaled put; retire the
        // journal before reopening the reader so a crash in between
        // replays nothing stale.
        let wal_truncated = match &mut self.wal {
            Some(wal) => wal.truncate()?,
            None => 0,
        };
        if self.opts.open_reader {
            self.reader = Some(StoreReader::open(&self.dir)?);
        }
        self.pending_bytes = 0;
        self.overlay.clear();
        self.unfed.clear();
        Ok(Some(CommitOutcome {
            generation: report.generation,
            telemetry: report.telemetry,
            wal_truncated,
        }))
    }

    /// Read one variable: overlay first, committed reader second.
    /// Used by tests and the crash sweep; the daemon keeps its own
    /// phase-attributed copy of this lookup.
    pub fn get(&self, step: u32, key: &str) -> Result<(Vec<u8>, GetSource), StoreError> {
        if let Some(entry) = self.overlay.get(&(step, key.to_string())) {
            return Ok((entry.data.clone(), GetSource::Overlay));
        }
        match &self.reader {
            Some(reader) => Ok((reader.get(step, key)?, GetSource::Committed)),
            None => Err(StoreError::NotFound {
                step,
                name: key.to_string(),
            }),
        }
    }

    /// Whether a writer currently exists (a commit would be non-empty).
    pub fn has_writer(&self) -> bool {
        self.writer.is_some()
    }

    /// Whether a commit would do anything: a live writer, or replayed
    /// journal entries still waiting for a generation of their own.
    pub fn has_pending(&self) -> bool {
        self.writer.is_some() || !self.unfed.is_empty()
    }
}

impl StoreCore<RealFs> {
    /// [`StoreCore::open`] on the real filesystem.
    pub fn open_real(dir: impl AsRef<Path>, opts: CoreOptions) -> Result<Self, StoreError> {
        Self::open(RealFs, dir, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("isobar-core-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> CoreOptions {
        CoreOptions {
            shards: 2,
            queue_depth: 2,
            commit_threshold: 1 << 20,
            ..CoreOptions::default()
        }
    }

    fn durable_put(core: &mut StoreCore<RealFs>, step: u32, name: &str, payload: &[u8]) {
        core.store_put(step, name, payload.to_vec(), 8).unwrap();
        core.wal_append("", step, name, 8, payload).unwrap();
        core.overlay_insert(step, name.to_string(), 8, payload.to_vec());
    }

    #[test]
    fn acked_puts_survive_a_drop_without_commit() {
        let dir = tmp("replay");
        let mut core = StoreCore::open_real(&dir, opts()).unwrap();
        durable_put(&mut core, 0, "alpha", &[1; 512]);
        durable_put(&mut core, 1, "beta", &[2; 256]);
        // Simulate a crash: drop without commit. The un-closed writer
        // aborts its segments; only the journal survives.
        drop(core);

        let mut core = StoreCore::open_real(&dir, opts()).unwrap();
        assert_eq!(core.replay.records, 2);
        assert_eq!(core.get(0, "alpha").unwrap().0, vec![1; 512]);
        assert_eq!(core.get(1, "beta").unwrap().0, vec![2; 256]);
        // Replay directly into shutdown must still commit a generation.
        let outcome = core.commit().unwrap().expect("replayed entries pending");
        assert!(outcome.wal_truncated >= 1);
        drop(core);

        // After the commit the journal is gone and the data is in the
        // committed store.
        let core = StoreCore::open_real(&dir, opts()).unwrap();
        assert_eq!(core.replay.records, 0);
        assert_eq!(core.replay.files, 0);
        let (data, source) = core.get(0, "alpha").unwrap();
        assert_eq!(data, vec![1; 512]);
        assert_eq!(source, GetSource::Committed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_truncates_journal_and_supersede_keeps_last_write() {
        let dir = tmp("truncate");
        let mut core = StoreCore::open_real(&dir, opts()).unwrap();
        durable_put(&mut core, 0, "v", &[1; 104]);
        durable_put(&mut core, 0, "v", &[9; 80]);
        assert_eq!(core.pending_bytes, 80);
        let outcome = core.commit().unwrap().expect("pending put");
        assert_eq!(outcome.wal_truncated, 1);
        assert!(core.overlay.is_empty());
        drop(core);

        let core = StoreCore::open_real(&dir, opts()).unwrap();
        assert_eq!(core.replay.records, 0);
        assert_eq!(core.get(0, "v").unwrap().0, vec![9; 80]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_off_restores_the_old_contract() {
        let dir = tmp("no-wal");
        let mut core = StoreCore::open_real(
            &dir,
            CoreOptions {
                wal: false,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(core.wal_append("", 0, "v", 8, &[1; 10]).unwrap(), 0);
        core.store_put(0, "v", vec![1; 10], 8).unwrap();
        core.overlay_insert(0, "v".to_string(), 8, vec![1; 10]);
        drop(core);
        let core = StoreCore::open_real(&dir, opts()).unwrap();
        assert_eq!(core.replay.records, 0);
        assert!(core.get(0, "v").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let dir = tmp("empty");
        let mut core = StoreCore::open_real(&dir, opts()).unwrap();
        assert!(core.commit().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
