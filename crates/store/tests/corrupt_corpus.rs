//! Corrupt-input corpus for the checkpoint store: one specimen per
//! documented defect class of the on-disk layout (head, index, trailer),
//! each asserting the specific `StoreError::Corrupt` message promised in
//! `docs/FORMAT.md`. Companion to `crates/isobar/tests/corrupt_corpus.rs`,
//! which covers the embedded container and stream formats.

use isobar::telemetry::{Counter, ENABLED};
use isobar::{IsobarOptions, Preference, Recorder};
use isobar_store::{StoreError, StoreReader, StoreWriter, TRAILER_LEN};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "isobar-corrupt-corpus-{}-{name}.isst",
        std::process::id()
    ));
    dir
}

fn options() -> IsobarOptions {
    IsobarOptions {
        preference: Preference::Speed,
        chunk_elements: 512,
        ..Default::default()
    }
}

fn demo_data(elements: usize) -> Vec<u8> {
    (0..elements as u64)
        .flat_map(|i| (((i / 5) << 32) | (i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF)).to_le_bytes())
        .collect()
}

/// Bytes of a small, valid, closed store with two variables.
fn valid_store() -> Vec<u8> {
    let path = tmp("pristine");
    let mut writer = StoreWriter::create(&path, options()).expect("create");
    writer.put(0, "u", &demo_data(700), 8).expect("put u");
    writer.put(1, "v", &demo_data(700), 8).expect("put v");
    writer.close().expect("close");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Write `bytes` to a scratch file, open it through the telemetry
/// entry point, and return the error plus the rejection count.
fn open_corrupt(name: &str, bytes: &[u8]) -> (StoreError, u64) {
    let path = tmp(name);
    std::fs::write(&path, bytes).expect("write specimen");
    let mut recorder = Recorder::new();
    let err = StoreReader::open_recorded(&path, &mut recorder)
        .expect_err("corrupt specimen must be rejected");
    let _ = std::fs::remove_file(&path);
    (
        err,
        recorder.snapshot().counter(Counter::StoreCorruptRejected),
    )
}

#[track_caller]
fn assert_corrupt(name: &str, bytes: &[u8], expected: &str) {
    let (err, rejected) = open_corrupt(name, bytes);
    match err {
        StoreError::Corrupt(what) => assert_eq!(what, expected),
        other => panic!("expected Corrupt({expected:?}), got {other:?}"),
    }
    if ENABLED {
        assert_eq!(rejected, 1, "rejection must bump the telemetry counter");
    }
}

#[test]
fn store_too_short() {
    // Below head + trailer there is no room for a store at all.
    assert_corrupt("short", &[0u8; 12], "file too short for a store");
}

#[test]
fn store_bad_magic() {
    let mut s = valid_store();
    s[0] = b'X';
    assert_corrupt("magic", &s, "bad store magic");
}

#[test]
fn store_unsupported_version() {
    let mut s = valid_store();
    s[4] = 9;
    assert_corrupt("version", &s, "unsupported store version");
}

#[test]
fn store_missing_trailer_magic() {
    // Stomp the closing "ISSX": the store looks unclosed / torn.
    let mut s = valid_store();
    let at = s.len() - 4;
    s[at] = b'?';
    assert_corrupt("trailer-magic", &s, "missing trailer (store not closed?)");
}

#[test]
fn store_torn_trailer_is_rejected() {
    // Cutting into the trailer shifts the magic out of place.
    let s = valid_store();
    let torn = &s[..s.len() - 5];
    let (err, _) = open_corrupt("torn", torn);
    assert!(matches!(err, StoreError::Corrupt(_)));
}

#[test]
fn store_index_offset_outside_file() {
    let mut s = valid_store();
    let at = s.len() - TRAILER_LEN;
    s[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_corrupt("index-offset", &s, "index offset outside data region");
}

#[test]
fn store_index_offset_inside_head() {
    // An offset pointing into the 5-byte head would alias header bytes
    // as index entries.
    let mut s = valid_store();
    let at = s.len() - TRAILER_LEN;
    s[at..at + 8].copy_from_slice(&2u64.to_le_bytes());
    let (err, _) = open_corrupt("index-in-head", &s);
    assert!(matches!(err, StoreError::Corrupt(_)));
}

#[test]
fn store_entry_count_exceeds_index() {
    // The claimed entry count must fit in the index region before the
    // reader allocates for it — this was the OOM-on-corrupt-trailer bug.
    let mut s = valid_store();
    let at = s.len() - TRAILER_LEN + 8;
    s[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_corrupt("entry-count", &s, "entry count exceeds index size");
}

#[test]
fn store_entry_range_outside_data_region() {
    // Find the first index entry's container offset field and point it
    // past the index: the entry's byte range leaves the data region.
    let s = valid_store();
    let trailer_at = s.len() - TRAILER_LEN;
    let index_offset =
        u64::from_le_bytes(s[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
    // IndexEntry layout: name_len u16 | step u32 | width u8 | offset u64 | ...
    let name_len = u16::from_le_bytes(s[index_offset..index_offset + 2].try_into().unwrap());
    let offset_at = index_offset + 2 + name_len as usize + 4 + 1;
    let mut bad = s.clone();
    bad[offset_at..offset_at + 8].copy_from_slice(&(s.len() as u64).to_le_bytes());
    // The tamper rewrites index bytes, so the index checksum catches it
    // first under the default verifying open…
    let (err, _) = open_corrupt("entry-range", &bad);
    assert!(err.is_checksum_mismatch(), "got {err:?}");
    // …and the structural range check still catches it when
    // verification is off.
    let path = tmp("entry-range-noverify");
    std::fs::write(&path, &bad).expect("write specimen");
    let err = StoreReader::open_with_verify(&path, false)
        .expect_err("range check is structural, not checksum-dependent");
    assert!(
        matches!(err, StoreError::Corrupt("entry range outside data region")),
        "got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn store_index_bit_flip_fails_index_checksum() {
    // One flipped bit anywhere in the index region must be caught by
    // the trailer's index checksum before any entry drives a seek.
    let s = valid_store();
    let trailer_at = s.len() - TRAILER_LEN;
    let index_offset = u64::from_le_bytes(s[trailer_at..trailer_at + 8].try_into().unwrap());
    let mut bad = s.clone();
    bad[index_offset as usize + 7] ^= 0x04;
    let (err, rejected) = open_corrupt("index-bit-flip", &bad);
    match err {
        StoreError::ChecksumMismatch { offset, .. } => assert_eq!(offset, index_offset),
        other => panic!("expected index checksum mismatch, got {other:?}"),
    }
    if ENABLED {
        assert_eq!(rejected, 1, "rejection must bump the telemetry counter");
    }
}

#[test]
fn store_corrupt_variable_payload_counts_rejection() {
    // A store that opens fine but whose record bytes were damaged must
    // surface the embedded container's typed error through `get` and
    // bump the store-side rejection counter.
    let s = valid_store();
    let path = tmp("payload");
    std::fs::write(&path, &s).expect("write specimen");
    // Locate the first variable's container through the intact index
    // and stomp its magic byte.
    let offset = {
        let reader = StoreReader::open(&path).expect("index is intact");
        reader.entry(0, "u").expect("entry exists").offset
    };
    let mut damaged = s.clone();
    damaged[offset as usize] = b'X';
    std::fs::write(&path, &damaged).expect("rewrite specimen");
    let reader = StoreReader::open(&path).expect("index is intact");
    let mut recorder = Recorder::new();
    let err = reader
        .get_recorded(0, "u", &mut recorder)
        .expect_err("damaged payload must be rejected");
    // The per-entry container checksum catches the damage before the
    // decoder ever parses the container.
    assert!(err.is_checksum_mismatch(), "got {err:?}");
    if ENABLED {
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter(Counter::StoreCorruptRejected), 1);
        assert_eq!(snapshot.counter(Counter::ChecksumMismatches), 1);
    }
    // With verification off the damage falls through to the embedded
    // container decoder, which rejects it structurally.
    let reader = StoreReader::open_with_verify(&path, false).expect("index is intact");
    let err = reader
        .get(0, "u")
        .expect_err("decoder still rejects the stomped magic");
    assert!(matches!(err, StoreError::Isobar(_)), "got {err:?}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn intact_store_round_trips() {
    let s = valid_store();
    let path = tmp("roundtrip");
    std::fs::write(&path, &s).expect("write");
    let reader = StoreReader::open(&path).expect("pristine store opens");
    assert_eq!(reader.get(0, "u").expect("u decodes"), demo_data(700));
    assert_eq!(reader.get(1, "v").expect("v decodes"), demo_data(700));
    let _ = std::fs::remove_file(&path);
}
