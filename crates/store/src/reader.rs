//! Random-access store reader.

use crate::error::StoreError;
use crate::format::{IndexEntry, MAGIC, MIN_ENTRY_LEN, TRAILER_LEN, TRAILER_MAGIC, VERSION};
use isobar::telemetry::Counter;
use isobar::{IsobarCompressor, Recorder};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Mutex;

/// Reads a closed checkpoint store with per-variable random access.
pub struct StoreReader {
    file: Mutex<File>,
    index: Vec<IndexEntry>,
}

impl StoreReader {
    /// Open a store and load its index.
    ///
    /// Every untrusted field is validated before it drives an
    /// allocation or a seek: the trailer must fit inside the file, the
    /// claimed entry count must fit inside the index region (each
    /// serialized entry is at least [`MIN_ENTRY_LEN`] bytes), and every
    /// entry's `[offset, offset + container_len)` range must lie inside
    /// the data region.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        let head_len = (MAGIC.len() + 1) as u64;
        if file_len < head_len + TRAILER_LEN as u64 {
            return Err(StoreError::Corrupt("file too short for a store"));
        }

        let mut head = [0u8; 5];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if head[..4] != MAGIC {
            return Err(StoreError::Corrupt("bad store magic"));
        }
        if head[4] != VERSION {
            return Err(StoreError::Corrupt("unsupported store version"));
        }

        let mut trailer = [0u8; TRAILER_LEN];
        file.seek(SeekFrom::Start(file_len - TRAILER_LEN as u64))?;
        file.read_exact(&mut trailer)?;
        if trailer[12..] != TRAILER_MAGIC {
            return Err(StoreError::Corrupt("missing trailer (store not closed?)"));
        }
        let index_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let entry_count = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
        // The index sits between the header and the trailer; an offset
        // inside either is corrupt (and `> file_len - TRAILER_LEN`
        // would underflow the length subtraction below).
        if index_offset < head_len || index_offset > file_len - TRAILER_LEN as u64 {
            return Err(StoreError::Corrupt("index offset outside data region"));
        }

        let index_len = file_len - TRAILER_LEN as u64 - index_offset;
        // Bound the claimed entry count by what the index region could
        // possibly hold before allocating for it.
        if entry_count as u64 * MIN_ENTRY_LEN as u64 > index_len {
            return Err(StoreError::Corrupt("entry count exceeds index size"));
        }
        let mut index_bytes = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_offset))?;
        file.read_exact(&mut index_bytes)?;

        let mut index = Vec::with_capacity(entry_count as usize);
        let mut cursor = &index_bytes[..];
        for _ in 0..entry_count {
            let (entry, used) = IndexEntry::read(cursor)?;
            let end = entry
                .offset
                .checked_add(entry.container_len)
                .ok_or(StoreError::Corrupt("entry range overflow"))?;
            if entry.offset < head_len || end > index_offset {
                return Err(StoreError::Corrupt("entry range outside data region"));
            }
            cursor = &cursor[used..];
            index.push(entry);
        }
        if !cursor.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes after index"));
        }

        Ok(StoreReader {
            file: Mutex::new(file),
            index,
        })
    }

    /// [`StoreReader::open`], bumping [`Counter::StoreCorruptRejected`]
    /// in `recorder` when the store is structurally invalid.
    pub fn open_recorded(
        path: impl AsRef<Path>,
        recorder: &mut Recorder,
    ) -> Result<Self, StoreError> {
        let result = Self::open(path);
        if matches!(result, Err(StoreError::Corrupt(_))) {
            recorder.incr(Counter::StoreCorruptRejected);
        }
        result
    }

    /// All index entries, in write order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Distinct time steps present, ascending.
    pub fn steps(&self) -> Vec<u32> {
        let mut steps: Vec<u32> = self.index.iter().map(|e| e.step).collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Distinct variable names, in first-appearance order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.index
            .iter()
            .filter(|e| seen.insert(e.name.as_str()))
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Locate the entry for `(step, name)`.
    pub fn entry(&self, step: u32, name: &str) -> Result<&IndexEntry, StoreError> {
        self.index
            .iter()
            .find(|e| e.step == step && e.name == name)
            .ok_or_else(|| StoreError::NotFound {
                step,
                name: name.to_string(),
            })
    }

    /// Read and decompress one variable.
    ///
    /// The entry's byte range was validated against the file length at
    /// [`StoreReader::open`], so the container allocation here is
    /// bounded by real on-disk bytes.
    pub fn get(&self, step: u32, name: &str) -> Result<Vec<u8>, StoreError> {
        let _span = isobar::trace::span(isobar::trace::TraceTag::StoreGet, isobar::trace::NO_CHUNK);
        let entry = self.entry(step, name)?.clone();
        let mut container = vec![0u8; entry.container_len as usize];
        {
            let mut file = self
                .file
                .lock()
                .map_err(|_| StoreError::Corrupt("reader file lock poisoned"))?;
            file.seek(SeekFrom::Start(entry.offset))?;
            file.read_exact(&mut container)?;
        }
        let data = IsobarCompressor::default().decompress(&container)?;
        if data.len() as u64 != entry.raw_len {
            return Err(StoreError::Corrupt("variable length mismatch"));
        }
        Ok(data)
    }

    /// [`StoreReader::get`], bumping [`Counter::StoreCorruptRejected`]
    /// in `recorder` when the stored variable fails to decode.
    pub fn get_recorded(
        &self,
        step: u32,
        name: &str,
        recorder: &mut Recorder,
    ) -> Result<Vec<u8>, StoreError> {
        let result = self.get(step, name);
        if matches!(result, Err(StoreError::Corrupt(_) | StoreError::Isobar(_))) {
            recorder.incr(Counter::StoreCorruptRejected);
        }
        result
    }

    /// Total raw and stored bytes across all entries: the store-level
    /// compression ratio.
    pub fn overall_ratio(&self) -> f64 {
        let raw: u64 = self.index.iter().map(|e| e.raw_len).sum();
        let stored: u64 = self.index.iter().map(|e| e.container_len).sum();
        if stored == 0 {
            1.0
        } else {
            raw as f64 / stored as f64
        }
    }
}
