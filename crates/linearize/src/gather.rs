//! Row-wise and column-wise byte-column gathering.
//!
//! An input of `n` elements of `width` bytes is conceptually an
//! `n × width` byte matrix (Fig. 3 of the paper). The partitioner
//! selects a subset of columns; these functions serialize that subset
//! in either order and reassemble it exactly.

/// Order in which selected byte-columns are serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Linearization {
    /// Element by element: `e₀c₀ e₀c₁ … e₁c₀ e₁c₁ …`.
    Row = 0,
    /// Column by column: `e₀c₀ e₁c₀ … e₀c₁ e₁c₁ …`.
    Column = 1,
}

impl Linearization {
    /// Both strategies, for sweeps.
    pub const ALL: [Linearization; 2] = [Linearization::Row, Linearization::Column];

    /// Parse from a metadata byte.
    pub fn from_u8(raw: u8) -> Option<Self> {
        match raw {
            0 => Some(Linearization::Row),
            1 => Some(Linearization::Column),
            _ => None,
        }
    }

    /// Name used in the paper's tables ("Row" / "Column").
    pub fn name(self) -> &'static str {
        match self {
            Linearization::Row => "Row",
            Linearization::Column => "Column",
        }
    }
}

impl std::fmt::Display for Linearization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Serialize the byte-columns in `cols` from `data` (`n` elements of
/// `width` bytes) into a new buffer using `lin`.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `width`, or any column
/// index is out of range.
pub fn gather_columns(data: &[u8], width: usize, cols: &[usize], lin: Linearization) -> Vec<u8> {
    assert!(width > 0 && data.len().is_multiple_of(width));
    assert!(cols.iter().all(|&c| c < width));
    let n = data.len() / width;
    if cols.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; n * cols.len()];
    let layout = match lin {
        Linearization::Row => isobar_simd::transpose::StreamLayout::RowMajor,
        Linearization::Column => isobar_simd::transpose::StreamLayout::ColumnMajor,
    };
    // Single-stream gather: the runtime-dispatched kernel with an empty
    // second stream (SIMD unpack-tree for widths ≤ 8, cache-blocked
    // scalar otherwise).
    isobar_simd::transpose::partition2(
        isobar_simd::active_tier(),
        data,
        width,
        cols,
        layout,
        &mut out,
        &[],
        &mut [],
    );
    out
}

/// Elements per transpose block, mirroring the kernel crate's blocked
/// scalar scatter.
const TRANSPOSE_BLOCK: usize = 4096;

/// Inverse of [`gather_columns`]: write the serialized bytes in `src`
/// back into the positions of `cols` inside `out` (`n` elements of
/// `width` bytes). Bytes of unselected columns are left untouched —
/// which is why this stays scalar: the SIMD reassemble kernel stores
/// whole rows and would clobber them.
///
/// # Panics
///
/// Panics if the buffer shapes are inconsistent.
pub fn scatter_columns(
    src: &[u8],
    width: usize,
    cols: &[usize],
    lin: Linearization,
    out: &mut [u8],
) {
    assert!(width > 0 && out.len().is_multiple_of(width));
    let n = out.len() / width;
    assert_eq!(src.len(), n * cols.len(), "serialized length mismatch");
    if cols.is_empty() {
        return;
    }
    match lin {
        Linearization::Row => {
            for (element, bytes) in out
                .chunks_exact_mut(width)
                .zip(src.chunks_exact(cols.len()))
            {
                for (&c, &b) in cols.iter().zip(bytes) {
                    element[c] = b;
                }
            }
        }
        Linearization::Column => {
            // Blocked inverse transpose, mirroring gather_columns.
            for block_start in (0..n).step_by(TRANSPOSE_BLOCK) {
                let block_end = (block_start + TRANSPOSE_BLOCK).min(n);
                for (k, &c) in cols.iter().enumerate() {
                    let col = &src[k * n + block_start..k * n + block_end];
                    for (&b, i) in col.iter().zip(block_start..block_end) {
                        out[i * width + c] = b;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // 4 elements × 3 bytes, values chosen so every byte is unique.
    const DATA: [u8; 12] = [10, 11, 12, 20, 21, 22, 30, 31, 32, 40, 41, 42];

    #[test]
    fn row_gather_interleaves_per_element() {
        let out = gather_columns(&DATA, 3, &[0, 2], Linearization::Row);
        assert_eq!(out, vec![10, 12, 20, 22, 30, 32, 40, 42]);
    }

    #[test]
    fn column_gather_is_contiguous_per_column() {
        let out = gather_columns(&DATA, 3, &[0, 2], Linearization::Column);
        assert_eq!(out, vec![10, 20, 30, 40, 12, 22, 32, 42]);
    }

    #[test]
    fn gather_with_all_columns_row_is_identity() {
        let out = gather_columns(&DATA, 3, &[0, 1, 2], Linearization::Row);
        assert_eq!(out, DATA.to_vec());
    }

    #[test]
    fn gather_empty_column_set() {
        assert!(gather_columns(&DATA, 3, &[], Linearization::Row).is_empty());
        assert!(gather_columns(&DATA, 3, &[], Linearization::Column).is_empty());
    }

    #[test]
    fn scatter_reverses_gather_both_orders() {
        for lin in Linearization::ALL {
            for cols in [vec![0], vec![1], vec![0, 2], vec![0, 1, 2], vec![2, 0]] {
                let gathered = gather_columns(&DATA, 3, &cols, lin);
                let mut rebuilt = [0u8; 12];
                scatter_columns(&gathered, 3, &cols, lin, &mut rebuilt);
                for (i, (&orig, &got)) in DATA.iter().zip(&rebuilt).enumerate() {
                    if cols.contains(&(i % 3)) {
                        assert_eq!(got, orig, "{lin:?} cols {cols:?} byte {i}");
                    } else {
                        assert_eq!(got, 0, "untouched byte {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn complementary_scatters_rebuild_everything() {
        // Scatter selected and unselected columns separately — this is
        // exactly how the ISOBAR merger reassembles a chunk.
        let selected = vec![0usize, 2];
        let rest = vec![1usize];
        let a = gather_columns(&DATA, 3, &selected, Linearization::Column);
        let b = gather_columns(&DATA, 3, &rest, Linearization::Row);
        let mut rebuilt = [0u8; 12];
        scatter_columns(&a, 3, &selected, Linearization::Column, &mut rebuilt);
        scatter_columns(&b, 3, &rest, Linearization::Row, &mut rebuilt);
        assert_eq!(rebuilt, DATA);
    }

    #[test]
    fn linearization_metadata_round_trips() {
        for lin in Linearization::ALL {
            assert_eq!(Linearization::from_u8(lin as u8), Some(lin));
        }
        assert_eq!(Linearization::from_u8(7), None);
        assert_eq!(Linearization::Row.name(), "Row");
        assert_eq!(Linearization::Column.to_string(), "Column");
    }

    #[test]
    #[should_panic]
    fn gather_rejects_misaligned_data() {
        gather_columns(&DATA[..11], 3, &[0], Linearization::Row);
    }

    #[test]
    #[should_panic]
    fn gather_rejects_out_of_range_column() {
        gather_columns(&DATA, 3, &[3], Linearization::Row);
    }
}
