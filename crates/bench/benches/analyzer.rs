//! Criterion bench for the ISOBAR-analyzer pass (Table V's TP_A).
//!
//! The paper reports ≈ 500 MB/s single-core analysis throughput on
//! 2012 hardware; the analyzer is a pure byte-histogram pass, so it
//! should comfortably exceed that on anything modern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use isobar::Analyzer;
use isobar_datasets::catalog;

fn bench_analyzer(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzer");
    let analyzer = Analyzer::default();
    for name in ["gts_chkp_zion", "s3d_vmag", "msg_sppm"] {
        let ds = catalog::spec(name)
            .expect("catalog entry")
            .generate(375_000, 7);
        group.throughput(Throughput::Bytes(ds.bytes.len() as u64));
        group.bench_with_input(BenchmarkId::new("analyze", name), &ds, |b, ds| {
            b.iter(|| {
                analyzer
                    .analyze(&ds.bytes, ds.width())
                    .expect("aligned data")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
