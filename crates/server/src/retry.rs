//! A retrying client for hostile networks: jittered exponential
//! backoff, a total deadline budget, and reconnect-and-retry on
//! transport errors.
//!
//! The serve protocol makes retries safe by construction: a put is
//! keyed on `(tenant, step, name)` and later writes supersede earlier
//! ones (last-wins in both the overlay and the committed store), so
//! re-sending a put whose ack was lost mid-frame is idempotent — the
//! worst case is writing the same bytes twice. [`RetryClient`] leans
//! on that: an ambiguous outcome (connection died before the response
//! arrived) is answered by reconnecting and re-putting.
//!
//! Busy responses back off on the *same* connection — the daemon kept
//! it frame-aligned on purpose. The backoff schedule is shared with
//! the soak harness and exposed as [`backoff_delay`] so its shape can
//! be unit tested deterministically.

use crate::client::Client;
use crate::protocol::{FrameError, Response, Status};
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Shape of the retry schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First backoff delay; doubles each attempt.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Give up after this many attempts of one operation.
    pub max_attempts: u32,
    /// Give up once an operation has been in flight this long in
    /// total, counting the attempts themselves and the backoffs.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(250),
            max_attempts: 64,
            deadline: Duration::from_secs(30),
        }
    }
}

/// The jittered exponential backoff before retry number `attempt`
/// (1-based): `base * 2^(attempt-1)` capped at `max_delay`, then
/// uniformly jittered into `[half, full]` so a fleet of clients
/// rejected together does not reconverge on the same instant. `rng`
/// is a caller-owned xorshift state, making schedules deterministic
/// under a fixed seed.
pub fn backoff_delay(policy: &RetryPolicy, attempt: u32, rng: &mut u64) -> Duration {
    let exp = attempt.saturating_sub(1).min(20);
    let raw = policy
        .base_delay
        .saturating_mul(1u32 << exp)
        .min(policy.max_delay);
    let raw_nanos = raw.as_nanos() as u64;
    if raw_nanos == 0 {
        return Duration::ZERO;
    }
    let half = raw_nanos / 2;
    let jitter = xorshift(rng) % (raw_nanos - half + 1);
    Duration::from_nanos(half + jitter)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Scramble a seed into an xorshift state (shared with the chaos
/// layer so adjacent seeds diverge immediately).
fn seed_state(seed: u64) -> u64 {
    crate::chaos::seed_state(seed)
}

/// Why a retried operation ultimately failed.
#[derive(Debug)]
pub enum RetryError {
    /// Attempts or the deadline budget ran out; carries the last
    /// transport error seen.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The last error, as text.
        last: String,
    },
    /// The daemon answered with a non-retryable protocol violation.
    Proto(String),
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetryError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            RetryError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for RetryError {}

/// Counters for one [`RetryClient`]'s lifetime.
#[derive(Debug, Default, Clone, Copy)]
pub struct RetryStats {
    /// Request attempts sent (including first tries).
    pub attempts: u64,
    /// Reconnects after a transport error.
    pub reconnects: u64,
    /// Backoffs taken after a Busy response.
    pub busy_retries: u64,
}

/// A [`Client`] wrapper that retries through Busy responses and
/// transport failures. `connect` is called for the initial connection
/// and after every transport error, letting the caller splice in any
/// transport (e.g. a [`crate::ChaosStream`]).
pub struct RetryClient<S: Read + Write, F: FnMut() -> io::Result<Client<S>>> {
    connect: F,
    policy: RetryPolicy,
    client: Option<Client<S>>,
    rng: u64,
    /// What this client has endured.
    pub stats: RetryStats,
}

impl<S: Read + Write, F: FnMut() -> io::Result<Client<S>>> RetryClient<S, F> {
    /// Build a retrying client; `seed` fixes the jitter schedule.
    pub fn new(policy: RetryPolicy, seed: u64, connect: F) -> Self {
        RetryClient {
            connect,
            policy,
            client: None,
            rng: seed_state(seed),
            stats: RetryStats::default(),
        }
    }

    fn client(&mut self) -> io::Result<&mut Client<S>> {
        if self.client.is_none() {
            self.client = Some((self.connect)()?);
        }
        Ok(self.client.as_mut().expect("just connected"))
    }

    /// Run one request-shaped operation under the retry schedule.
    /// `op` is re-invoked on a fresh or existing client per attempt.
    fn with_retries(
        &mut self,
        mut op: impl FnMut(&mut Client<S>) -> Result<Response, FrameError>,
    ) -> Result<Response, RetryError> {
        let started = Instant::now();
        let mut attempt = 0u32;
        let mut last = String::from("never attempted");
        loop {
            attempt += 1;
            if attempt > self.policy.max_attempts || started.elapsed() >= self.policy.deadline {
                return Err(RetryError::Exhausted {
                    attempts: attempt - 1,
                    last,
                });
            }
            self.stats.attempts += 1;
            let outcome = match self.client() {
                Ok(client) => op(client),
                Err(e) => Err(FrameError::Io(e)),
            };
            match outcome {
                Ok(resp) if resp.status == Status::Busy => {
                    // The daemon drained the payload; the connection
                    // is healthy and frame-aligned. Back off in place.
                    self.stats.busy_retries += 1;
                    last = "Busy".to_string();
                    std::thread::sleep(backoff_delay(&self.policy, attempt, &mut self.rng));
                }
                Ok(resp) => return Ok(resp),
                Err(FrameError::Io(e)) => {
                    // Ambiguous: the request may or may not have been
                    // applied. Reconnect and retry — puts are
                    // idempotent under (tenant, step, name) last-wins.
                    last = e.to_string();
                    if self.client.take().is_some() {
                        self.stats.reconnects += 1;
                    }
                    std::thread::sleep(backoff_delay(&self.policy, attempt, &mut self.rng));
                }
                Err(FrameError::Proto(e)) => return Err(RetryError::Proto(e.to_string())),
            }
        }
    }

    /// Store one variable, retrying until acked or out of budget.
    pub fn put(
        &mut self,
        tenant: &str,
        step: u32,
        name: &str,
        width: u8,
        payload: &[u8],
    ) -> Result<Response, RetryError> {
        let payload = payload.to_vec();
        self.with_retries(|client| client.put(tenant, step, name, width, payload.clone()))
    }

    /// Fetch one variable, retrying transport failures. A `NotFound`
    /// response is returned, not retried — absence is an answer.
    pub fn get(&mut self, tenant: &str, step: u32, name: &str) -> Result<Response, RetryError> {
        self.with_retries(|client| client.get(tenant, step, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_jittered_in_range() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut rng = 99u64;
        // Expected raw delays: 2, 4, 8, 16, 32, 64, 100, 100, ... ms.
        let mut raws = Vec::new();
        for attempt in 1..=10u32 {
            let d = backoff_delay(&policy, attempt, &mut rng);
            let raw = Duration::from_millis(2)
                .saturating_mul(1 << (attempt - 1))
                .min(Duration::from_millis(100));
            assert!(d >= raw / 2, "attempt {attempt}: {d:?} < half of {raw:?}");
            assert!(d <= raw, "attempt {attempt}: {d:?} > {raw:?}");
            raws.push(raw);
        }
        assert_eq!(raws[6], Duration::from_millis(100), "cap reached");
        assert_eq!(raws[9], Duration::from_millis(100), "cap holds");
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_varies_across_attempts() {
        let policy = RetryPolicy::default();
        let run = |seed: u64| {
            let mut rng = seed;
            (1..=8u32)
                .map(|a| backoff_delay(&policy, a, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let policy = RetryPolicy::default();
        let mut rng = 1;
        let d = backoff_delay(&policy, u32::MAX, &mut rng);
        assert!(d <= policy.max_delay);
    }
}
