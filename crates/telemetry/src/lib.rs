#![warn(missing_docs)]

//! Pipeline telemetry: counters, histograms, and stage timers for the
//! ISOBAR workflow, designed to cost nothing when disabled.
//!
//! The ISOBAR paper's argument rests on *measurable* per-stage behavior
//! — which byte-columns the analyzer classifies as compressible (§II.A),
//! what the EUPA selector picks (§II.C), and what throughput each stage
//! sustains (Tables V/IX). This crate provides the recording substrate
//! every other crate in the workspace threads through its hot paths:
//!
//! * [`Recorder`] — a per-thread bundle of counters, stage timers, and
//!   histograms. Recording a value is a couple of integer adds into
//!   fixed-size arrays: no allocation, no locks, no atomics.
//! * [`TelemetrySnapshot`] — the plain-data view of a recorder.
//!   Snapshots are serializable to JSON ([`TelemetrySnapshot::to_json`]),
//!   parseable back ([`TelemetrySnapshot::from_json`]), and mergeable
//!   ([`TelemetrySnapshot::merge`]) so per-worker recorders can be
//!   aggregated at a pipeline join in any order.
//! * [`StageTimer`] — a guard that measures one stage span and folds it
//!   into a recorder.
//!
//! # The off switch
//!
//! Building this crate without its `enabled` feature (the workspace's
//! *telemetry-off* configuration, `cargo build --no-default-features`)
//! turns [`Recorder`] into a zero-sized type whose methods are empty
//! `#[inline]` bodies and [`StageTimer`] into a guard that never reads
//! the clock. Every call site compiles away; the allocation-free hot
//! paths of the compression pipeline are byte-for-byte unaffected. Code
//! that wants to skip work feeding a recorder (e.g. the analyzer's
//! τ-margin scan) can branch on the compile-time constant [`ENABLED`].
//!
//! # Example
//!
//! ```
//! use isobar_telemetry::{Counter, Recorder, Stage};
//!
//! let mut rec = Recorder::new();
//! rec.add(Counter::ChunkInputBytes, 3_000_000);
//! rec.record_stage(Stage::SolverCompress, 1_250_000);
//!
//! let snap = rec.snapshot();
//! let json = snap.to_json();
//! let back = isobar_telemetry::TelemetrySnapshot::from_json(&json).unwrap();
//! assert_eq!(snap, back);
//! ```

pub mod json;
pub mod latency;
mod snapshot;

pub use latency::{LatencyHistogram, LATENCY_BUCKETS};
pub use snapshot::{
    kernel_tier_name, StageStats, TelemetrySnapshot, EUPA_COMBOS, HISTOGRAM_BUCKETS,
    SNAPSHOT_SCHEMA_VERSION,
};

/// Compile-time flag: `true` when this build records telemetry.
///
/// Branch on this to skip *computing* a value that exists only to be
/// recorded (the recording call itself is already free when disabled).
pub const ENABLED: bool = cfg!(feature = "enabled");

/// One named monotonic counter.
///
/// The discriminant doubles as the index into
/// [`TelemetrySnapshot::counters`]; the JSON key is [`Counter::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Chunks classified by the analyzer.
    AnalyzerChunks,
    /// Bytes the analyzer histogrammed.
    AnalyzerBytes,
    /// Byte-columns that passed the frequency test (signal).
    ColumnsCompressible,
    /// Byte-columns that failed the frequency test (noise).
    ColumnsIncompressible,
    /// Bytes routed to the solver by the partitioner (paper's C).
    PartitionCompressibleBytes,
    /// Bytes stored verbatim by the partitioner (paper's I) — the
    /// counter behind Table IV's "HTC Bytes (%)".
    PartitionVerbatimBytes,
    /// EUPA selection rounds (one per dataset/stream, unless overridden).
    EupaRuns,
    /// Chunks pushed through the compression pipeline.
    ChunksCompressed,
    /// Chunks decoded back.
    ChunksDecompressed,
    /// Chunks encoded whole (undetermined data, Algorithm 1 lines 2–3).
    ChunksPassthrough,
    /// Chunks split into C + I (improvable data, lines 5–7).
    ChunksPartitioned,
    /// Original bytes entering the per-chunk compress loop.
    ChunkInputBytes,
    /// Container bytes produced by the per-chunk compress loop
    /// (payloads + per-chunk metadata).
    ChunkOutputBytes,
    /// Bytes reconstructed by the decode loop.
    ChunkDecodedBytes,
    /// Container metadata bytes (file headers + chunk headers).
    ContainerMetadataBytes,
    /// Chunk compressions that reused warm scratch capacity.
    ScratchReuseHits,
    /// Chunk compressions that had to grow the scratch.
    ScratchReuseMisses,
    /// Chunk records written by the streaming writer.
    StreamChunksWritten,
    /// Chunk records consumed by the streaming reader.
    StreamChunksRead,
    /// Streaming framing bytes (header, markers, chunk headers, trailer).
    StreamMetadataBytes,
    /// Variables written to a checkpoint store.
    StorePuts,
    /// ISOBAR container bytes appended to a store.
    StoreContainerBytes,
    /// Raw (uncompressed) bytes handed to a store.
    StoreRawBytes,
    /// Store index + trailer bytes written at close.
    StoreIndexBytes,
    /// Batch containers rejected as corrupt during decode.
    ContainerCorruptRejected,
    /// Streams rejected as corrupt by the streaming reader.
    StreamCorruptRejected,
    /// Stores rejected as corrupt while opening or reading.
    StoreCorruptRejected,
    /// Checksum verification failures across all formats (container
    /// chunks, stream frames, store entries/index).
    ChecksumMismatches,
    /// Chunks stored verbatim because the solver panicked mid-compress
    /// (the pipeline's graceful-degradation fallback).
    ChunksVerbatimFallback,
    /// Damaged chunks/frames/entries skipped by salvage-mode decode.
    ChunksSkippedCorrupt,
    /// Segment files committed by sharded-store manifest commits.
    StoreSegmentsCommitted,
    /// Manifest bytes written by sharded-store commits.
    StoreManifestBytes,
    /// Index entries superseded by a later put of the same
    /// `(step, variable)` pair in a sharded store.
    StoreSupersededEntries,
    /// Sharded-store compaction passes completed.
    StoreCompactionsRun,
    /// Requests decoded and dispatched by the serve daemon.
    ServeRequests,
    /// Payload bytes accepted by serve `put` requests.
    ServePutBytes,
    /// Payload bytes returned by serve `get` requests.
    ServeGetBytes,
    /// Requests rejected with `Busy` by serve admission control.
    ServeBusyRejected,
    /// Malformed request frames rejected by the serve decoder.
    ServeProtocolErrors,
    /// Store generations committed by the serve daemon (threshold
    /// rolls plus the final shutdown commit).
    ServeCommits,
    /// Requests whose wall time exceeded the serve daemon's
    /// `--slow-ms` threshold (each also lands in the slow-request
    /// JSONL log when the flight recorder is on).
    ServeSlowRequests,
    /// Flight-recorder Chrome-trace dumps written by the serve daemon
    /// (SIGUSR1, panic, or slow-request triggers).
    ServeFlightDumps,
    /// Records appended (and fsynced) to the serve daemon's
    /// write-ahead journal — one per acked put while the WAL is on.
    ServeWalAppends,
    /// Payload bytes made durable through the serve write-ahead
    /// journal before their acks.
    ServeWalBytes,
    /// Journal records replayed into the overlay on daemon startup
    /// (acked writes recovered after a crash).
    ServeWalReplayed,
    /// Write-ahead journal truncations (one per generation commit
    /// that had journaled puts to retire).
    ServeWalTruncations,
}

impl Counter {
    /// Number of counters (array size).
    pub const COUNT: usize = 46;

    /// Every counter, in stable JSON order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::AnalyzerChunks,
        Counter::AnalyzerBytes,
        Counter::ColumnsCompressible,
        Counter::ColumnsIncompressible,
        Counter::PartitionCompressibleBytes,
        Counter::PartitionVerbatimBytes,
        Counter::EupaRuns,
        Counter::ChunksCompressed,
        Counter::ChunksDecompressed,
        Counter::ChunksPassthrough,
        Counter::ChunksPartitioned,
        Counter::ChunkInputBytes,
        Counter::ChunkOutputBytes,
        Counter::ChunkDecodedBytes,
        Counter::ContainerMetadataBytes,
        Counter::ScratchReuseHits,
        Counter::ScratchReuseMisses,
        Counter::StreamChunksWritten,
        Counter::StreamChunksRead,
        Counter::StreamMetadataBytes,
        Counter::StorePuts,
        Counter::StoreContainerBytes,
        Counter::StoreRawBytes,
        Counter::StoreIndexBytes,
        Counter::ContainerCorruptRejected,
        Counter::StreamCorruptRejected,
        Counter::StoreCorruptRejected,
        Counter::ChecksumMismatches,
        Counter::ChunksVerbatimFallback,
        Counter::ChunksSkippedCorrupt,
        Counter::StoreSegmentsCommitted,
        Counter::StoreManifestBytes,
        Counter::StoreSupersededEntries,
        Counter::StoreCompactionsRun,
        Counter::ServeRequests,
        Counter::ServePutBytes,
        Counter::ServeGetBytes,
        Counter::ServeBusyRejected,
        Counter::ServeProtocolErrors,
        Counter::ServeCommits,
        Counter::ServeSlowRequests,
        Counter::ServeFlightDumps,
        Counter::ServeWalAppends,
        Counter::ServeWalBytes,
        Counter::ServeWalReplayed,
        Counter::ServeWalTruncations,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::AnalyzerChunks => "analyzer_chunks",
            Counter::AnalyzerBytes => "analyzer_bytes",
            Counter::ColumnsCompressible => "columns_compressible",
            Counter::ColumnsIncompressible => "columns_incompressible",
            Counter::PartitionCompressibleBytes => "partition_compressible_bytes",
            Counter::PartitionVerbatimBytes => "partition_verbatim_bytes",
            Counter::EupaRuns => "eupa_runs",
            Counter::ChunksCompressed => "chunks_compressed",
            Counter::ChunksDecompressed => "chunks_decompressed",
            Counter::ChunksPassthrough => "chunks_passthrough",
            Counter::ChunksPartitioned => "chunks_partitioned",
            Counter::ChunkInputBytes => "chunk_input_bytes",
            Counter::ChunkOutputBytes => "chunk_output_bytes",
            Counter::ChunkDecodedBytes => "chunk_decoded_bytes",
            Counter::ContainerMetadataBytes => "container_metadata_bytes",
            Counter::ScratchReuseHits => "scratch_reuse_hits",
            Counter::ScratchReuseMisses => "scratch_reuse_misses",
            Counter::StreamChunksWritten => "stream_chunks_written",
            Counter::StreamChunksRead => "stream_chunks_read",
            Counter::StreamMetadataBytes => "stream_metadata_bytes",
            Counter::StorePuts => "store_puts",
            Counter::StoreContainerBytes => "store_container_bytes",
            Counter::StoreRawBytes => "store_raw_bytes",
            Counter::StoreIndexBytes => "store_index_bytes",
            Counter::ContainerCorruptRejected => "container_corrupt_rejected",
            Counter::StreamCorruptRejected => "stream_corrupt_rejected",
            Counter::StoreCorruptRejected => "store_corrupt_rejected",
            Counter::ChecksumMismatches => "checksum_mismatches",
            Counter::ChunksVerbatimFallback => "chunks_verbatim_fallback",
            Counter::ChunksSkippedCorrupt => "chunks_skipped_corrupt",
            Counter::StoreSegmentsCommitted => "store_segments_committed",
            Counter::StoreManifestBytes => "store_manifest_bytes",
            Counter::StoreSupersededEntries => "store_superseded_entries",
            Counter::StoreCompactionsRun => "store_compactions_run",
            Counter::ServeRequests => "serve_requests",
            Counter::ServePutBytes => "serve_put_bytes",
            Counter::ServeGetBytes => "serve_get_bytes",
            Counter::ServeBusyRejected => "serve_busy_rejected",
            Counter::ServeProtocolErrors => "serve_protocol_errors",
            Counter::ServeCommits => "serve_commits",
            Counter::ServeSlowRequests => "serve_slow_requests",
            Counter::ServeFlightDumps => "serve_flight_dumps",
            Counter::ServeWalAppends => "serve_wal_appends",
            Counter::ServeWalBytes => "serve_wal_bytes",
            Counter::ServeWalReplayed => "serve_wal_replayed",
            Counter::ServeWalTruncations => "serve_wal_truncations",
        }
    }
}

/// One timed pipeline stage.
///
/// The discriminant doubles as the index into
/// [`TelemetrySnapshot::stages`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// EUPA trial compression of the sample set (§II.C).
    EupaSelect,
    /// Byte-column frequency analysis (§II.A; the paper's TP_A).
    Analyze,
    /// Splitting a chunk into C and I streams (§II.B).
    Partition,
    /// Solver compression of the compressible stream.
    SolverCompress,
    /// Solver decompression.
    SolverDecompress,
    /// Scattering C + I back into the original element order.
    Reassemble,
    /// Serializing container metadata + payloads.
    ContainerWrite,
    /// Parsing container metadata.
    ContainerRead,
}

impl Stage {
    /// Number of stages (array size).
    pub const COUNT: usize = 8;

    /// Every stage, in stable JSON order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::EupaSelect,
        Stage::Analyze,
        Stage::Partition,
        Stage::SolverCompress,
        Stage::SolverDecompress,
        Stage::Reassemble,
        Stage::ContainerWrite,
        Stage::ContainerRead,
    ];

    /// Stable snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Stage::EupaSelect => "eupa_select",
            Stage::Analyze => "analyze",
            Stage::Partition => "partition",
            Stage::SolverCompress => "solver_compress",
            Stage::SolverDecompress => "solver_decompress",
            Stage::Reassemble => "reassemble",
            Stage::ContainerWrite => "container_write",
            Stage::ContainerRead => "container_read",
        }
    }
}

/// Per-thread telemetry recorder.
///
/// One recorder belongs to one thread, exactly like the pipeline's
/// `PipelineScratch`: serial loops keep one, parallel paths create one
/// per worker and [`Recorder::absorb`] them at the join. All recording
/// methods are branch-light integer arithmetic on inline arrays; in the
/// telemetry-off build the struct is zero-sized and every method is an
/// empty inline body.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    #[cfg(feature = "enabled")]
    snap: TelemetrySnapshot,
}

impl Recorder {
    /// Fresh recorder with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `value` to a counter.
    #[inline]
    pub fn add(&mut self, counter: Counter, value: u64) {
        #[cfg(feature = "enabled")]
        {
            self.snap.counters[counter as usize] += value;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (counter, value);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&mut self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Fold one timed span of `stage` (in nanoseconds) into the stats.
    #[inline]
    pub fn record_stage(&mut self, stage: Stage, nanos: u64) {
        #[cfg(feature = "enabled")]
        {
            self.snap.stages[stage as usize].record(nanos);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (stage, nanos);
        }
    }

    /// Record one column's τ-margin: the column's peak byte frequency
    /// divided by the tolerance `τ·N/256`. Values ≥ 1 mean the column
    /// passed the frequency test; the histogram shows how close the
    /// whole dataset sits to the τ decision boundary (the paper's
    /// stability claim for τ ∈ [1.4, 1.5]).
    #[inline]
    pub fn record_tau_margin(&mut self, margin: f64) {
        #[cfg(feature = "enabled")]
        {
            self.snap.tau_margin[snapshot::margin_bucket(margin)] += 1;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = margin;
        }
    }

    /// Record one EUPA trial compression of combination
    /// `(codec_idx, lin_idx)` (see [`EUPA_COMBOS`] for the indexing).
    #[inline]
    pub fn record_eupa_trial(&mut self, codec_idx: usize, lin_idx: usize, nanos: u64) {
        #[cfg(feature = "enabled")]
        {
            let combo = snapshot::combo_index(codec_idx, lin_idx);
            self.snap.eupa_trial_count[combo] += 1;
            self.snap.eupa_trial_nanos[combo] += nanos;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (codec_idx, lin_idx, nanos);
        }
    }

    /// Record the SIMD kernel tier the pipeline is running on (an
    /// `isobar-simd` `KernelTier::as_u8` tag). Idempotent per process —
    /// every pipeline in a process resolves the same tier.
    #[inline]
    pub fn set_kernel_tier(&mut self, tier: u8) {
        #[cfg(feature = "enabled")]
        {
            self.snap.kernel_tier = tier;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = tier;
        }
    }

    /// Record the combination EUPA finally selected.
    #[inline]
    pub fn record_eupa_selected(&mut self, codec_idx: usize, lin_idx: usize) {
        #[cfg(feature = "enabled")]
        {
            self.snap.eupa_selected[snapshot::combo_index(codec_idx, lin_idx)] += 1;
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (codec_idx, lin_idx);
        }
    }

    /// Merge another recorder into this one (the pipeline-join
    /// aggregation). Commutative and associative: absorbing per-worker
    /// recorders in any order yields the same totals.
    #[inline]
    pub fn absorb(&mut self, other: &Recorder) {
        #[cfg(feature = "enabled")]
        {
            self.snap.merge(&other.snap);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = other;
        }
    }

    /// Merge an already-taken snapshot into this recorder — the same
    /// aggregation as [`Recorder::absorb`] for totals that arrive as
    /// plain data (e.g. a `CompressionReport`'s telemetry).
    #[inline]
    pub fn absorb_snapshot(&mut self, snapshot: &TelemetrySnapshot) {
        #[cfg(feature = "enabled")]
        {
            self.snap.merge(snapshot);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = snapshot;
        }
    }

    /// Zero every counter, timer, and histogram.
    pub fn reset(&mut self) {
        #[cfg(feature = "enabled")]
        {
            self.snap = TelemetrySnapshot::default();
        }
    }

    /// The current totals as plain data. In the telemetry-off build
    /// this is always the all-zero snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        #[cfg(feature = "enabled")]
        {
            self.snap.clone()
        }
        #[cfg(not(feature = "enabled"))]
        {
            TelemetrySnapshot::default()
        }
    }
}

/// Measures one stage span. In the telemetry-off build this is a
/// zero-sized guard that never reads the clock.
///
/// ```
/// use isobar_telemetry::{Recorder, Stage, StageTimer};
///
/// let mut rec = Recorder::new();
/// let timer = StageTimer::start(Stage::Partition);
/// // ... do the stage's work ...
/// timer.finish(&mut rec);
/// ```
#[must_use = "a timer that is never finished records nothing"]
pub struct StageTimer {
    #[cfg(feature = "enabled")]
    stage: Stage,
    #[cfg(feature = "enabled")]
    start: std::time::Instant,
}

impl StageTimer {
    /// Start timing `stage`.
    #[inline]
    pub fn start(stage: Stage) -> Self {
        #[cfg(feature = "enabled")]
        {
            StageTimer {
                stage,
                start: std::time::Instant::now(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = stage;
            StageTimer {}
        }
    }

    /// Stop the clock and fold the span into `recorder`.
    #[inline]
    pub fn finish(self, recorder: &mut Recorder) {
        #[cfg(feature = "enabled")]
        {
            recorder.record_stage(self.stage, self.start.elapsed().as_nanos() as u64);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = recorder;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_starts_at_zero_and_accumulates() {
        let mut rec = Recorder::new();
        assert_eq!(rec.snapshot(), TelemetrySnapshot::default());
        rec.add(Counter::ChunkInputBytes, 100);
        rec.incr(Counter::ChunksCompressed);
        rec.record_stage(Stage::Analyze, 500);
        let snap = rec.snapshot();
        if ENABLED {
            assert_eq!(snap.counter(Counter::ChunkInputBytes), 100);
            assert_eq!(snap.counter(Counter::ChunksCompressed), 1);
            assert_eq!(snap.stage(Stage::Analyze).count, 1);
            assert_eq!(snap.stage(Stage::Analyze).total_nanos, 500);
        } else {
            assert_eq!(snap, TelemetrySnapshot::default());
        }
    }

    #[test]
    fn absorb_is_order_independent() {
        let mut a = Recorder::new();
        a.add(Counter::AnalyzerBytes, 10);
        a.record_stage(Stage::SolverCompress, 5);
        a.record_tau_margin(0.4);
        let mut b = Recorder::new();
        b.add(Counter::AnalyzerBytes, 32);
        b.record_stage(Stage::SolverCompress, 9);
        b.record_eupa_trial(0, 1, 77);

        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
    }

    #[test]
    fn stage_timer_records_one_span() {
        let mut rec = Recorder::new();
        let timer = StageTimer::start(Stage::ContainerWrite);
        timer.finish(&mut rec);
        if ENABLED {
            assert_eq!(rec.snapshot().stage(Stage::ContainerWrite).count, 1);
        }
    }

    #[test]
    fn enum_tables_are_consistent() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{}", c.name());
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i, "{}", s.name());
        }
        // Names are unique (they are JSON keys).
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
    }
}
