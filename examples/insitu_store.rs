//! In-situ checkpoint store: write a multi-variable simulation run,
//! restore selectively.
//!
//! Run with: `cargo run --release --example insitu_store`
//!
//! Models the deployment the paper targets: a fusion simulation dumps
//! several variables per checkpoint step; ISOBAR compresses each one
//! on the way to disk, and a later restart reads back exactly the
//! variables it needs, bit-for-bit.

use isobar::{IsobarOptions, Preference};
use isobar_datasets::catalog;
use isobar_store::{StoreReader, StoreWriter};

const STEPS: u32 = 5;
const ELEMENTS: usize = 120_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("isobar-demo-run.isst");

    // --- simulation side: write checkpoints in-situ ------------------
    let variables = [
        ("zion", catalog::spec("gts_chkp_zion").expect("catalog")),
        ("zeon", catalog::spec("gts_chkp_zeon").expect("catalog")),
        ("phi", catalog::spec("gts_phi_l").expect("catalog")),
    ];
    let mut writer = StoreWriter::create(
        &path,
        IsobarOptions {
            preference: Preference::Speed,
            ..Default::default()
        },
    )?;
    let start = std::time::Instant::now();
    let mut raw_total = 0usize;
    for step in 0..STEPS {
        for (name, spec) in &variables {
            let ds = spec.generate(ELEMENTS, 9000 + step as u64);
            raw_total += ds.bytes.len();
            let entry = writer.put(step, name, &ds.bytes, ds.width())?;
            println!(
                "step {step} {name:<5} {:>9} -> {:>9} bytes (CR {:.3})",
                entry.raw_len,
                entry.container_len,
                entry.ratio()
            );
        }
    }
    writer.close()?;
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "---\nwrote {} checkpoints, {:.1} MB raw at {:.1} MB/s effective",
        STEPS * variables.len() as u32,
        raw_total as f64 / 1e6,
        raw_total as f64 / 1e6 / elapsed
    );

    // --- restart side: selective restore ----------------------------
    let reader = StoreReader::open(&path)?;
    println!(
        "store: steps {:?}, variables {:?}, overall CR {:.3}",
        reader.steps(),
        reader.variables(),
        reader.overall_ratio()
    );
    // Restore only the final step's ion checkpoint, as a restart would.
    let last = *reader.steps().last().expect("non-empty run");
    let restored = reader.get(last, "zion")?;
    let expected = variables[0].1.generate(ELEMENTS, 9000 + last as u64);
    assert_eq!(restored, expected.bytes);
    println!(
        "restored step {last} 'zion' bit-exactly ({} bytes)",
        restored.len()
    );

    std::fs::remove_file(&path).ok();

    // --- pipelined variant: compression overlapped with compute -----
    // The simulation hands off each variable and immediately moves on;
    // a worker thread runs ISOBAR and the file I/O behind it.
    let path = std::env::temp_dir().join("isobar-demo-run-pipelined.isst");
    let writer = isobar_store::PipelinedStoreWriter::create(
        &path,
        IsobarOptions {
            preference: Preference::Speed,
            ..Default::default()
        },
        2, // queue depth: at most two checkpoints in flight
    )?;
    let start = std::time::Instant::now();
    let mut handoff_secs = 0.0;
    for step in 0..STEPS {
        for (name, spec) in &variables {
            // "Compute" the next field, then hand it off.
            let ds = spec.generate(ELEMENTS, 9000 + step as u64);
            let t = std::time::Instant::now();
            writer.put(step, name, ds.bytes, 8)?;
            handoff_secs += t.elapsed().as_secs_f64();
        }
    }
    let entries = writer.close()?;
    println!(
        "pipelined: {} checkpoints; producer spent {:.1}% of the wall time in put()",
        entries.len(),
        handoff_secs / start.elapsed().as_secs_f64() * 100.0
    );
    let reader = StoreReader::open(&path)?;
    assert_eq!(reader.entries().len(), entries.len());
    std::fs::remove_file(&path).ok();
    Ok(())
}
