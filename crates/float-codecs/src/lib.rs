#![warn(missing_docs)]

//! Floating-point compression baselines for the ISOBAR reproduction.
//!
//! Table X of the ISOBAR paper compares ISOBAR-Sp against two
//! special-purpose floating-point compressors. Both are reimplemented
//! here from their publications:
//!
//! * [`fpc::Fpc`] — FPC (Burtscher & Ratanaworabhan 2009): dual
//!   FCM/DFCM hash-table value prediction, XOR residuals,
//!   leading-zero-byte encoding. Optimized for speed.
//! * [`fpzip::FpzipLike`] — an fpzip-class codec (Lindstrom & Isenburg
//!   2006): Lorenzo prediction over 1–3-D grids with a range-coded
//!   residual stream. Optimized for ratio on smooth fields.
//!
//! Substrates: [`range_coder`] (LZMA-style carry-handled range coder
//! plus adaptive models) and [`lorenzo`] (n-D Lorenzo predictor).
//!
//! # Example
//!
//! ```
//! use isobar_float_codecs::fpc::Fpc;
//! use isobar_float_codecs::fpzip::FpzipLike;
//! use isobar_float_codecs::lorenzo::Dims;
//!
//! let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
//! let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
//!
//! let fpc = Fpc::default();
//! assert_eq!(fpc.decompress(&fpc.compress(&bytes)).unwrap(), bytes);
//!
//! let fpz = FpzipLike;
//! let packed = fpz.compress_f64(&bytes, Dims::linear(values.len())).unwrap();
//! assert_eq!(fpz.decompress(&packed).unwrap(), bytes);
//! ```

pub mod fpc;
pub mod fpzip;
pub mod lorenzo;
pub mod range_coder;

pub use fpc::Fpc;
pub use fpzip::FpzipLike;
pub use lorenzo::Dims;
