//! Criterion benches for the standalone codecs.
//!
//! Throughput of compression and decompression for both ISOBAR solvers
//! and both floating-point baselines, on a representative
//! hard-to-compress buffer (gts-like doubles). These are the numbers
//! behind Table V's zlib/bzlib2 columns and Table X's FPC/fpzip
//! columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate, Codec};
use isobar_datasets::catalog;
use isobar_float_codecs::{Dims, Fpc, FpzipLike};

const ELEMENTS: usize = 375_000; // one paper chunk ≈ 3 MB

fn bench_general_codecs(c: &mut Criterion) {
    let ds = catalog::spec("gts_chkp_zion")
        .expect("catalog entry")
        .generate(ELEMENTS, 7);
    let mut group = c.benchmark_group("general_codecs");
    group.throughput(Throughput::Bytes(ds.bytes.len() as u64));
    group.sample_size(10);

    for codec in [&Deflate::default() as &dyn Codec, &Bzip2Like::default()] {
        group.bench_with_input(
            BenchmarkId::new("compress", codec.name()),
            &ds.bytes,
            |b, data| b.iter(|| codec.compress(data)),
        );
        let packed = codec.compress(&ds.bytes);
        group.bench_with_input(
            BenchmarkId::new("decompress", codec.name()),
            &packed,
            |b, data| b.iter(|| codec.decompress(data).expect("own stream")),
        );
    }
    group.finish();
}

fn bench_float_codecs(c: &mut Criterion) {
    let ds = catalog::spec("gts_chkp_zion")
        .expect("catalog entry")
        .generate(ELEMENTS, 7);
    let mut group = c.benchmark_group("float_codecs");
    group.throughput(Throughput::Bytes(ds.bytes.len() as u64));
    group.sample_size(10);

    let fpc = Fpc::default();
    group.bench_function("compress/fpc", |b| b.iter(|| fpc.compress(&ds.bytes)));
    let fpc_packed = fpc.compress(&ds.bytes);
    group.bench_function("decompress/fpc", |b| {
        b.iter(|| fpc.decompress(&fpc_packed).expect("own stream"))
    });

    let fpz = FpzipLike;
    let dims = Dims::linear(ELEMENTS);
    group.bench_function("compress/fpzip", |b| {
        b.iter(|| fpz.compress_f64(&ds.bytes, dims).expect("aligned"))
    });
    let fpz_packed = fpz.compress_f64(&ds.bytes, dims).expect("aligned");
    group.bench_function("decompress/fpzip", |b| {
        b.iter(|| fpz.decompress(&fpz_packed).expect("own stream"))
    });
    group.finish();
}

criterion_group!(benches, bench_general_codecs, bench_float_codecs);
criterion_main!(benches);
