#![warn(missing_docs)]

//! Runtime-dispatched SIMD kernels for the ISOBAR hot paths.
//!
//! Five loops dominate the pipeline's wall time outside the entropy
//! coders: the analyzer's per-byte-column histograms, the partitioner's
//! column gather/scatter (and its inverse on decode), the blind
//! byte-shuffle transpose, XXH64 stripe processing, and the DEFLATE
//! matcher's longest-match compare. Each gets a kernel here with a
//! portable scalar implementation — always compiled, always the test
//! oracle — plus `std::arch` x86-64 variants selected at **runtime**
//! with [`is_x86_feature_detected!`], so one binary runs correctly on
//! any CPU and fast on the ones that matter.
//!
//! # Dispatch model
//!
//! A [`KernelTier`] names one implementation level. [`detect_tier`]
//! probes the CPU; [`active_tier`] resolves the process-wide tier once
//! (from the `ISOBAR_KERNELS` environment variable, then CPU
//! detection) and caches it, and [`set_kernels`] overrides it — the CLI
//! maps `--kernels=scalar|auto` onto that. Pipelines resolve the tier
//! **once at construction** and thread it through their hot loops, so
//! dispatch costs nothing per call; every kernel also takes an explicit
//! tier so tests can run scalar and SIMD side by side in one process.
//!
//! Every kernel is exact: SIMD output is byte-identical to the scalar
//! oracle (checked by differential proptests in this crate and pinned
//! end-to-end by the format golden tests upstream). There are no
//! floating-point kernels and no fast-math shortcuts.
//!
//! On non-x86 targets [`detect_tier`] reports [`KernelTier::Neon`] on
//! aarch64 (the kernels there use the portable wide-word paths — cheap
//! and safe without hand-written NEON) and [`KernelTier::Scalar`]
//! elsewhere.

pub mod adler;
pub mod hist;
pub mod memcmp;
pub mod transpose;
pub mod xxh64;

use std::sync::atomic::{AtomicU8, Ordering};

/// One kernel implementation level. Ordering is meaningless across
/// architectures — match on variants, never compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KernelTier {
    /// Portable scalar code: the oracle every other tier must match.
    Scalar = 0,
    /// x86-64 SSE2 (baseline on every x86-64 CPU).
    Sse2 = 1,
    /// x86-64 AVX2 (implies SSSE3/SSE4; kernels may use either).
    Avx2 = 2,
    /// aarch64: portable wide-word paths (no hand-written intrinsics).
    Neon = 3,
}

impl KernelTier {
    /// Stable lower-case name used in telemetry, bench labels and CLI
    /// output.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Sse2 => "sse2",
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
        }
    }

    /// Inverse of [`KernelTier::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "scalar" => Some(KernelTier::Scalar),
            "sse2" => Some(KernelTier::Sse2),
            "avx2" => Some(KernelTier::Avx2),
            "neon" => Some(KernelTier::Neon),
            _ => None,
        }
    }

    /// Numeric tag for telemetry snapshots (matches the enum
    /// discriminant; 0 doubles as "scalar or unrecorded").
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`KernelTier::as_u8`].
    pub fn from_u8(raw: u8) -> Option<Self> {
        match raw {
            0 => Some(KernelTier::Scalar),
            1 => Some(KernelTier::Sse2),
            2 => Some(KernelTier::Avx2),
            3 => Some(KernelTier::Neon),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the user asked for: pin to the scalar oracle, or let CPU
/// detection pick the fastest tier. This is the value behind the CLI's
/// `--kernels=` flag and the `ISOBAR_KERNELS` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelSelection {
    /// Force the portable scalar kernels everywhere.
    Scalar,
    /// Use the best tier the CPU supports (the default).
    #[default]
    Auto,
}

impl KernelSelection {
    /// Parse a `--kernels=` / `ISOBAR_KERNELS` value.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "scalar" => Some(KernelSelection::Scalar),
            "auto" => Some(KernelSelection::Auto),
            _ => None,
        }
    }

    /// Resolve to a concrete tier on this machine.
    pub fn resolve(self) -> KernelTier {
        match self {
            KernelSelection::Scalar => KernelTier::Scalar,
            KernelSelection::Auto => detect_tier(),
        }
    }
}

/// Probe the CPU for the best supported tier. Unlike [`active_tier`]
/// this ignores the environment and any [`set_kernels`] override.
pub fn detect_tier() -> KernelTier {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            return KernelTier::Avx2;
        }
        // SSE2 is part of the x86-64 baseline, but go through the
        // detector anyway so the fallback chain is uniform.
        if is_x86_feature_detected!("sse2") {
            return KernelTier::Sse2;
        }
        KernelTier::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        KernelTier::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        KernelTier::Scalar
    }
}

/// Process-wide resolved tier: 0 = not yet resolved, otherwise
/// `tier as u8 + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The process-wide kernel tier, resolved once and cached.
///
/// Resolution order: a prior [`set_kernels`] call wins; otherwise the
/// `ISOBAR_KERNELS` environment variable (`scalar` or `auto`; unset or
/// unrecognized reads as `auto`); otherwise CPU detection.
pub fn active_tier() -> KernelTier {
    let cached = ACTIVE.load(Ordering::Relaxed);
    if cached != 0 {
        return KernelTier::from_u8(cached - 1).unwrap_or(KernelTier::Scalar);
    }
    let tier = std::env::var("ISOBAR_KERNELS")
        .ok()
        .and_then(|v| KernelSelection::parse(&v))
        .unwrap_or_default()
        .resolve();
    // A concurrent set_kernels() may have stored first; keep its value.
    let _ = ACTIVE.compare_exchange(0, tier.as_u8() + 1, Ordering::Relaxed, Ordering::Relaxed);
    let now = ACTIVE.load(Ordering::Relaxed);
    KernelTier::from_u8(now - 1).unwrap_or(KernelTier::Scalar)
}

/// Override the process-wide tier (the CLI's `--kernels=` flag).
/// Affects pipelines constructed after the call.
pub fn set_kernels(selection: KernelSelection) {
    ACTIVE.store(selection.resolve().as_u8() + 1, Ordering::Relaxed);
}

/// Every tier that can run on this machine, scalar first — what
/// differential tests and the kernel microbenches iterate over.
pub fn testable_tiers() -> Vec<KernelTier> {
    let mut tiers = vec![KernelTier::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("sse2") {
            tiers.push(KernelTier::Sse2);
        }
        if is_x86_feature_detected!("avx2") {
            tiers.push(KernelTier::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        tiers.push(KernelTier::Neon);
    }
    tiers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for tier in [
            KernelTier::Scalar,
            KernelTier::Sse2,
            KernelTier::Avx2,
            KernelTier::Neon,
        ] {
            assert_eq!(KernelTier::from_name(tier.name()), Some(tier));
            assert_eq!(KernelTier::from_u8(tier.as_u8()), Some(tier));
            assert_eq!(tier.to_string(), tier.name());
        }
        assert_eq!(KernelTier::from_name("avx512"), None);
        assert_eq!(KernelTier::from_u8(9), None);
    }

    #[test]
    fn selection_parses_and_resolves() {
        assert_eq!(
            KernelSelection::parse("scalar"),
            Some(KernelSelection::Scalar)
        );
        assert_eq!(KernelSelection::parse("auto"), Some(KernelSelection::Auto));
        assert_eq!(KernelSelection::parse("fast"), None);
        assert_eq!(KernelSelection::Scalar.resolve(), KernelTier::Scalar);
        assert_eq!(KernelSelection::Auto.resolve(), detect_tier());
    }

    #[test]
    fn testable_tiers_start_scalar_and_include_detected() {
        let tiers = testable_tiers();
        assert_eq!(tiers[0], KernelTier::Scalar);
        assert!(tiers.contains(&detect_tier()));
    }

    #[test]
    fn active_tier_is_stable_across_calls() {
        let first = active_tier();
        assert_eq!(active_tier(), first);
    }
}
