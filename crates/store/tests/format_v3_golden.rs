//! Offset-verified golden test for the version-3 store layout.
//!
//! Parses a real sharded store with the raw offsets documented in
//! `docs/FORMAT.md` — no store code on the read side — so the spec
//! cannot silently drift from what `ShardedStoreWriter` emits.

use isobar::IsobarOptions;
use isobar_store::{ShardedOptions, ShardedStoreWriter};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("isobar-v3-golden-{}-{name}", std::process::id()))
}

fn u16_at(b: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(b[at..at + 2].try_into().unwrap())
}

fn u32_at(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}

fn u64_at(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

#[test]
fn v3_store_matches_documented_offsets() {
    let dir = tmp("offsets");
    let _ = std::fs::remove_dir_all(&dir);
    let payload: Vec<u8> = (0..4096u32)
        .flat_map(|i| (i as u64).to_le_bytes())
        .collect();
    let writer = ShardedStoreWriter::create(
        &dir,
        IsobarOptions::default(),
        ShardedOptions {
            shards: 1,
            queue_depth: 1,
        },
    )
    .unwrap();
    writer.put(9, "density", payload.clone(), 8).unwrap();
    let report = writer.close().unwrap();
    assert_eq!(report.generation, 0);
    assert_eq!(report.segments_committed, 1);

    // --- Segment file: g<generation:016x>-s<shard:03>.seg ---
    let seg_name = "g0000000000000000-s000.seg";
    let seg = std::fs::read(dir.join(seg_name)).unwrap();
    // Header: magic "ISSG", version 3, shard u16, reserved zero byte.
    assert_eq!(&seg[0..4], b"ISSG");
    assert_eq!(seg[4], 3);
    assert_eq!(u16_at(&seg, 5), 0);
    assert_eq!(seg[7], 0);
    // First record at offset 8: name_len u16 | name | step u32 |
    // width u8 | container_len u64 | ISBR container.
    assert_eq!(u16_at(&seg, 8), 7); // "density"
    assert_eq!(&seg[10..17], b"density");
    assert_eq!(u32_at(&seg, 17), 9); // step
    assert_eq!(seg[21], 8); // width
    let container_len = u64_at(&seg, 22);
    let container_at = 30;
    assert_eq!(&seg[container_at..container_at + 4], b"ISBR");
    // Trailer (last 24 bytes): data_len u64 | record_count u32 |
    // xxh64 of those 12 bytes | magic "ISGX".
    let trailer_at = seg.len() - 24;
    let data_len = u64_at(&seg, trailer_at);
    assert_eq!(data_len, container_at as u64 + container_len);
    assert_eq!(data_len, trailer_at as u64); // records end where the trailer begins
    assert_eq!(u32_at(&seg, trailer_at + 8), 1); // record_count
    assert_eq!(
        u64_at(&seg, trailer_at + 12),
        isobar_codecs::xxhash::xxh64(&seg[trailer_at..trailer_at + 12], 0)
    );
    assert_eq!(&seg[trailer_at + 20..], b"ISGX");

    // --- Manifest ---
    let man = std::fs::read(dir.join("MANIFEST")).unwrap();
    // Header: magic "ISSM", version 3, three reserved zero bytes,
    // generation u64, segment count u16.
    assert_eq!(&man[0..4], b"ISSM");
    assert_eq!(man[4], 3);
    assert_eq!(&man[5..8], &[0, 0, 0]);
    assert_eq!(u64_at(&man, 8), 0); // generation
    assert_eq!(u16_at(&man, 16), 1); // segment count
                                     // Segment row: name_len u16 | file name | data_len u64 |
                                     // record_count u32.
    let mut pos = 18;
    assert_eq!(u16_at(&man, pos) as usize, seg_name.len());
    pos += 2;
    assert_eq!(&man[pos..pos + seg_name.len()], seg_name.as_bytes());
    pos += seg_name.len();
    assert_eq!(u64_at(&man, pos), data_len);
    pos += 8;
    assert_eq!(u32_at(&man, pos), 1);
    pos += 4;
    // Entry region: count u32, then segment ordinal u16 + v2 index
    // entry (name_len u16 | name | step u32 | width u8 | offset u64 |
    // container_len u64 | raw_len u64 | checksum u64).
    assert_eq!(u32_at(&man, pos), 1);
    pos += 4;
    assert_eq!(u16_at(&man, pos), 0); // segment ordinal
    pos += 2;
    assert_eq!(u16_at(&man, pos), 7);
    pos += 2;
    assert_eq!(&man[pos..pos + 7], b"density");
    pos += 7;
    assert_eq!(u32_at(&man, pos), 9); // step
    pos += 4;
    assert_eq!(man[pos], 8); // width
    pos += 1;
    assert_eq!(u64_at(&man, pos), container_at as u64); // segment-relative offset
    pos += 8;
    assert_eq!(u64_at(&man, pos), container_len);
    pos += 8;
    assert_eq!(u64_at(&man, pos), payload.len() as u64); // raw_len
    pos += 8;
    let container = &seg[container_at..container_at + container_len as usize];
    assert_eq!(
        u64_at(&man, pos),
        isobar_codecs::xxhash::xxh64(container, 0)
    );
    pos += 8;
    // Trailer: xxh64 of every preceding byte + magic "ISMX".
    assert_eq!(pos, man.len() - 12);
    assert_eq!(
        u64_at(&man, pos),
        isobar_codecs::xxhash::xxh64(&man[..pos], 0)
    );
    assert_eq!(&man[man.len() - 4..], b"ISMX");

    let _ = std::fs::remove_dir_all(&dir);
}
