//! Lorenzo prediction over 1-, 2-, and 3-dimensional grids.
//!
//! fpzip (Lindstrom & Isenburg 2006) traverses an n-dimensional scalar
//! field in raster order and predicts each sample from its already-seen
//! hypercube corner neighbours with alternating signs (the Lorenzo
//! predictor of Ibarria et al. 2003). In 1D this degenerates to
//! previous-value prediction; in 2D it is the parallelogram rule.
//!
//! Prediction runs in the *mapped integer* domain (see
//! [`crate::fpzip::map_f64`]) with wrapping arithmetic, so encoder and
//! decoder agree bit-exactly regardless of float rounding.

/// Grid shape for Lorenzo prediction. Unused trailing dimensions are 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Fastest-varying extent.
    pub nx: usize,
    /// Middle extent.
    pub ny: usize,
    /// Slowest-varying extent.
    pub nz: usize,
}

impl Dims {
    /// A 1-D stream of `n` samples.
    pub fn linear(n: usize) -> Self {
        Dims {
            nx: n,
            ny: 1,
            nz: 1,
        }
    }

    /// A 2-D `nx × ny` grid.
    pub fn grid2(nx: usize, ny: usize) -> Self {
        Dims { nx, ny, nz: 1 }
    }

    /// A 3-D `nx × ny × nz` grid.
    pub fn grid3(nx: usize, ny: usize, nz: usize) -> Self {
        Dims { nx, ny, nz }
    }

    /// Total number of samples.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the grid holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of meaningful dimensions (trailing extents of 1 dropped).
    pub fn rank(&self) -> usize {
        if self.nz > 1 {
            3
        } else if self.ny > 1 {
            2
        } else {
            1
        }
    }
}

/// Lorenzo predictor state: a sliding window over the previous plane,
/// row, and sample of the mapped integer field.
///
/// Out-of-bounds neighbours contribute 0, matching fpzip's behaviour on
/// boundary samples.
///
/// The plane buffers grow lazily with [`Lorenzo::advance`] instead of
/// being pre-sized from `dims`: the decoder constructs a predictor from
/// *untrusted* header dimensions, and an eager `nx × ny` reservation
/// would let a corrupt header demand gigabytes before the first symbol
/// is decoded. Cells not yet written read as 0, which is exactly what
/// the eager zero-filled buffers provided.
pub struct Lorenzo {
    dims: Dims,
    /// `prev[y * nx + x]` — mapped values of the previous z-plane.
    prev_plane: Vec<u64>,
    /// Mapped values of the current z-plane, filled as we scan.
    cur_plane: Vec<u64>,
    /// Linear index within the current plane.
    idx: usize,
    /// Current plane number.
    z: usize,
}

impl Lorenzo {
    /// Create a predictor for a grid of the given shape. Allocates
    /// nothing up front; memory grows with samples actually advanced.
    pub fn new(dims: Dims) -> Self {
        Lorenzo {
            dims,
            prev_plane: Vec::new(),
            cur_plane: Vec::new(),
            idx: 0,
            z: 0,
        }
    }

    #[inline]
    fn sample(&self, dx: usize, dy: usize, dz: usize) -> u64 {
        let x = self.idx % self.dims.nx;
        let y = self.idx / self.dims.nx;
        if x < dx || y < dy || self.z < dz {
            return 0;
        }
        let i = (y - dy) * self.dims.nx + (x - dx);
        let plane = if dz == 1 {
            &self.prev_plane
        } else {
            &self.cur_plane
        };
        plane.get(i).copied().unwrap_or(0)
    }

    /// Predict the next sample in raster order.
    #[inline]
    pub fn predict(&self) -> u64 {
        // Inclusion–exclusion over the already-visited corner
        // neighbours; odd-size subsets add, even-size subtract.
        let f = |dx, dy, dz| self.sample(dx, dy, dz);
        match self.dims.rank() {
            1 => f(1, 0, 0),
            2 => f(1, 0, 0).wrapping_add(f(0, 1, 0)).wrapping_sub(f(1, 1, 0)),
            _ => f(1, 0, 0)
                .wrapping_add(f(0, 1, 0))
                .wrapping_add(f(0, 0, 1))
                .wrapping_sub(f(1, 1, 0))
                .wrapping_sub(f(1, 0, 1))
                .wrapping_sub(f(0, 1, 1))
                .wrapping_add(f(1, 1, 1)),
        }
    }

    /// Record the actual mapped value of the sample just predicted and
    /// advance the scan position.
    #[inline]
    pub fn advance(&mut self, actual: u64) {
        debug_assert_eq!(self.cur_plane.len(), self.idx);
        self.cur_plane.push(actual);
        self.idx += 1;
        if self.idx == self.dims.nx * self.dims.ny {
            std::mem::swap(&mut self.prev_plane, &mut self.cur_plane);
            self.cur_plane.clear();
            self.idx = 0;
            self.z += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(dims: Dims, values: &[u64]) -> Vec<u64> {
        let mut predictor = Lorenzo::new(dims);
        values
            .iter()
            .map(|&v| {
                let p = predictor.predict();
                predictor.advance(v);
                p
            })
            .collect()
    }

    #[test]
    fn dims_helpers() {
        assert_eq!(Dims::linear(10).len(), 10);
        assert_eq!(Dims::linear(10).rank(), 1);
        assert_eq!(Dims::grid2(4, 5).len(), 20);
        assert_eq!(Dims::grid2(4, 5).rank(), 2);
        assert_eq!(Dims::grid3(2, 3, 4).len(), 24);
        assert_eq!(Dims::grid3(2, 3, 4).rank(), 3);
        assert!(Dims::linear(0).is_empty());
    }

    #[test]
    fn one_d_is_previous_value() {
        let values = [10u64, 20, 30, 25, 25];
        let preds = drive(Dims::linear(5), &values);
        assert_eq!(preds, vec![0, 10, 20, 30, 25]);
    }

    #[test]
    fn two_d_is_parallelogram_rule() {
        // Grid (x fastest):
        //   1 2
        //   3 4
        // Prediction for the last sample: left + above − diagonal.
        let values = [1u64, 2, 3, 4];
        let preds = drive(Dims::grid2(2, 2), &values);
        assert_eq!(preds[3], 3 + 2 - 1);
        // First sample has no neighbours.
        assert_eq!(preds[0], 0);
    }

    #[test]
    fn two_d_is_exact_on_affine_fields() {
        // For f(x, y) = a + b·x + c·y the parallelogram rule is exact
        // away from the boundary.
        let (nx, ny) = (8usize, 6usize);
        let field: Vec<u64> = (0..ny)
            .flat_map(|y| (0..nx).map(move |x| (100 + 3 * x + 7 * y) as u64))
            .collect();
        let preds = drive(Dims::grid2(nx, ny), &field);
        for y in 1..ny {
            for x in 1..nx {
                let i = y * nx + x;
                assert_eq!(preds[i], field[i], "interior sample ({x},{y})");
            }
        }
    }

    #[test]
    fn three_d_is_exact_on_affine_fields() {
        let (nx, ny, nz) = (5usize, 4usize, 3usize);
        let field: Vec<u64> = (0..nz)
            .flat_map(|z| {
                (0..ny)
                    .flat_map(move |y| (0..nx).map(move |x| (1000 + 2 * x + 5 * y + 11 * z) as u64))
            })
            .collect();
        let preds = drive(Dims::grid3(nx, ny, nz), &field);
        for z in 1..nz {
            for y in 1..ny {
                for x in 1..nx {
                    let i = (z * ny + y) * nx + x;
                    assert_eq!(preds[i], field[i], "interior sample ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn wrapping_arithmetic_never_panics() {
        let values = [u64::MAX, u64::MAX - 1, 0, 5, u64::MAX];
        drive(Dims::grid2(5, 1), &values);
        drive(Dims::grid3(1, 1, 5), &values);
    }
}
