//! DEFLATE encoder: token blocks → bit stream (RFC 1951).

use crate::bitio::LsbBitWriter;
use crate::codec::CompressionLevel;
use crate::huffman::HuffmanEncoder;
use crate::lz77::{Matcher, Token};

use super::tables::*;

/// Tokens per emitted block. Each block gets its own Huffman codes, so
/// this bounds how stale the statistics can get on heterogeneous input.
const BLOCK_TOKENS: usize = 1 << 16;

/// Compress `data` into a raw DEFLATE stream (no zlib wrapper).
pub fn deflate_raw(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let tokens = Matcher::new(data, level).tokenize();
    let mut w = LsbBitWriter::new();

    if tokens.is_empty() {
        // Zero-length input still needs one final block.
        write_stored_blocks(&mut w, data, true);
        return w.finish();
    }

    let mut token_start = 0usize;
    let mut byte_start = 0usize;
    while token_start < tokens.len() {
        let token_end = (token_start + BLOCK_TOKENS).min(tokens.len());
        let block = &tokens[token_start..token_end];
        let byte_len: usize = block
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        let is_final = token_end == tokens.len();
        write_block(
            &mut w,
            block,
            &data[byte_start..byte_start + byte_len],
            is_final,
        );
        token_start = token_end;
        byte_start += byte_len;
    }
    w.finish()
}

/// Histogram of literal/length and distance symbols for one block.
struct BlockFreqs {
    litlen: [u64; NUM_LITLEN],
    dist: [u64; NUM_DIST],
}

fn block_freqs(block: &[Token]) -> BlockFreqs {
    let mut litlen = [0u64; NUM_LITLEN];
    let mut dist = [0u64; NUM_DIST];
    for token in block {
        match *token {
            Token::Literal(b) => litlen[b as usize] += 1,
            Token::Match { len, dist: d } => {
                litlen[257 + length_code(len).0] += 1;
                dist[dist_code(d).0] += 1;
            }
        }
    }
    litlen[EOB] += 1;
    BlockFreqs { litlen, dist }
}

/// Pick the cheapest representation (stored / fixed / dynamic) and emit
/// the block.
fn write_block(w: &mut LsbBitWriter, block: &[Token], raw: &[u8], is_final: bool) {
    let freqs = block_freqs(block);

    // Dynamic codes. Guarantee at least one distance code so the header
    // never encodes an empty alphabet.
    let mut dist_freqs = freqs.dist;
    if dist_freqs.iter().all(|&f| f == 0) {
        dist_freqs[0] = 1;
    }
    let dyn_lit = HuffmanEncoder::from_freqs(&freqs.litlen, MAX_CODE_LEN);
    let dyn_dist = HuffmanEncoder::from_freqs(&dist_freqs, MAX_CODE_LEN);
    let header = DynamicHeader::build(dyn_lit.lengths(), dyn_dist.lengths());

    let extra_bits: u64 = block
        .iter()
        .map(|t| match *t {
            Token::Literal(_) => 0,
            Token::Match { len, dist } => length_code(len).1 as u64 + dist_code(dist).1 as u64,
        })
        .sum();
    let dyn_cost = 3
        + header.cost_bits
        + dyn_lit.cost_bits(&freqs.litlen)
        + dyn_dist.cost_bits(&freqs.dist)
        + extra_bits;

    let fixed_lit = HuffmanEncoder::from_lengths(&fixed_litlen_lengths());
    let fixed_dist = HuffmanEncoder::from_lengths(&fixed_dist_lengths());
    let fixed_cost =
        3 + fixed_lit.cost_bits(&freqs.litlen) + fixed_dist.cost_bits(&freqs.dist) + extra_bits;

    // Stored cost: alignment + 4-byte length header per 65535-byte piece.
    let stored_pieces = raw.len().div_ceil(65535).max(1) as u64;
    let stored_cost = stored_pieces * (4 * 8) + raw.len() as u64 * 8 + 7;

    if stored_cost < dyn_cost && stored_cost < fixed_cost {
        write_stored_blocks(w, raw, is_final);
    } else if fixed_cost <= dyn_cost {
        w.write_bits(is_final as u32, 1);
        w.write_bits(0b01, 2);
        write_tokens(w, block, &fixed_lit, &fixed_dist);
    } else {
        w.write_bits(is_final as u32, 1);
        w.write_bits(0b10, 2);
        header.write(w);
        write_tokens(w, block, &dyn_lit, &dyn_dist);
    }
}

/// Emit `raw` as one or more stored blocks (type 00).
fn write_stored_blocks(w: &mut LsbBitWriter, raw: &[u8], is_final: bool) {
    let mut pieces: Vec<&[u8]> = raw.chunks(65535).collect();
    if pieces.is_empty() {
        pieces.push(&[]);
    }
    let last = pieces.len() - 1;
    for (i, piece) in pieces.iter().enumerate() {
        w.write_bits((is_final && i == last) as u32, 1);
        w.write_bits(0b00, 2);
        w.align_to_byte();
        let len = piece.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(piece);
    }
}

fn write_tokens(
    w: &mut LsbBitWriter,
    block: &[Token],
    lit: &HuffmanEncoder,
    dist: &HuffmanEncoder,
) {
    for token in block {
        match *token {
            Token::Literal(b) => lit.write_lsb(w, b as usize),
            Token::Match { len, dist: d } => {
                let (lc, lextra, lval) = length_code(len);
                lit.write_lsb(w, 257 + lc);
                w.write_bits(lval as u32, lextra as u32);
                let (dc, dextra, dval) = dist_code(d);
                dist.write_lsb(w, dc);
                w.write_bits(dval as u32, dextra as u32);
            }
        }
    }
    lit.write_lsb(w, EOB);
}

/// A dynamic block header: the RLE-compressed code lengths plus the
/// code-length code that describes them (RFC 1951 §3.2.7).
struct DynamicHeader {
    hlit: usize,
    hdist: usize,
    hclen: usize,
    cl_encoder: HuffmanEncoder,
    /// RLE symbols: (code-length symbol 0..=18, extra value, extra bits).
    rle: Vec<(u8, u16, u8)>,
    cost_bits: u64,
}

impl DynamicHeader {
    fn build(lit_lengths: &[u8], dist_lengths: &[u8]) -> Self {
        let hlit = trimmed_len(lit_lengths, 257);
        let hdist = trimmed_len(dist_lengths, 1);

        let mut all = Vec::with_capacity(hlit + hdist);
        all.extend_from_slice(&lit_lengths[..hlit]);
        all.extend_from_slice(&dist_lengths[..hdist]);
        let rle = rle_code_lengths(&all);

        let mut cl_freqs = [0u64; NUM_CODELEN];
        for &(sym, _, _) in &rle {
            cl_freqs[sym as usize] += 1;
        }
        let cl_encoder = HuffmanEncoder::from_freqs(&cl_freqs, MAX_CODELEN_LEN);

        let hclen = CODELEN_ORDER
            .iter()
            .rposition(|&sym| cl_encoder.len(sym) > 0)
            .map_or(4, |i| (i + 1).max(4));

        let body_bits: u64 = rle
            .iter()
            .map(|&(sym, _, extra)| cl_encoder.len(sym as usize) as u64 + extra as u64)
            .sum();
        let cost_bits = 5 + 5 + 4 + hclen as u64 * 3 + body_bits;

        DynamicHeader {
            hlit,
            hdist,
            hclen,
            cl_encoder,
            rle,
            cost_bits,
        }
    }

    fn write(&self, w: &mut LsbBitWriter) {
        w.write_bits((self.hlit - 257) as u32, 5);
        w.write_bits((self.hdist - 1) as u32, 5);
        w.write_bits((self.hclen - 4) as u32, 4);
        for &sym in CODELEN_ORDER.iter().take(self.hclen) {
            w.write_bits(self.cl_encoder.len(sym) as u32, 3);
        }
        for &(sym, value, extra) in &self.rle {
            self.cl_encoder.write_lsb(w, sym as usize);
            if extra > 0 {
                w.write_bits(value as u32, extra as u32);
            }
        }
    }
}

/// Number of leading lengths to transmit: trailing zeros are implied,
/// but at least `min` entries must be sent.
fn trimmed_len(lengths: &[u8], min: usize) -> usize {
    lengths
        .iter()
        .rposition(|&l| l > 0)
        .map_or(min, |i| (i + 1).max(min))
}

/// RLE-compress a code-length sequence using symbols 16 (repeat previous
/// 3–6 times), 17 (3–10 zeros) and 18 (11–138 zeros).
fn rle_code_lengths(lengths: &[u8]) -> Vec<(u8, u16, u8)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lengths.len() {
        let len = lengths[i];
        let mut run = 1usize;
        while i + run < lengths.len() && lengths[i + run] == len {
            run += 1;
        }
        if len == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                out.push((18, (take - 11) as u16, 7));
                left -= take;
            }
            if left >= 3 {
                out.push((17, (left - 3) as u16, 3));
                left = 0;
            }
            for _ in 0..left {
                out.push((0, 0, 0));
            }
        } else {
            // First occurrence is literal; the rest can use symbol 16.
            out.push((len, 0, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                out.push((16, (take - 3) as u16, 2));
                left -= take;
            }
            for _ in 0..left {
                out.push((len, 0, 0));
            }
        }
        i += run;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand_rle(rle: &[(u8, u16, u8)]) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::new();
        for &(sym, value, _) in rle {
            match sym {
                0..=15 => out.push(sym),
                16 => {
                    let prev = *out.last().expect("16 with no previous");
                    out.extend(std::iter::repeat_n(prev, value as usize + 3));
                }
                17 => out.extend(std::iter::repeat_n(0, value as usize + 3)),
                18 => out.extend(std::iter::repeat_n(0, value as usize + 11)),
                _ => unreachable!(),
            }
        }
        out
    }

    #[test]
    fn rle_round_trips_assorted_length_sequences() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![5],
            vec![0; 200],
            vec![8; 144],
            vec![1, 2, 3, 4, 5],
            vec![7, 7, 7, 7, 7, 7, 7, 7, 0, 0, 0, 0, 9, 9],
            {
                let mut v = vec![0; 138];
                v.extend([3; 7]);
                v.extend([0; 11]);
                v.push(15);
                v
            },
        ];
        for case in cases {
            let rle = rle_code_lengths(&case);
            assert_eq!(expand_rle(&rle), case, "case {case:?}");
            // Every extra-bit field must fit its width.
            for &(sym, value, extra) in &rle {
                assert!(sym <= 18);
                if extra > 0 {
                    assert!(value < (1 << extra));
                }
            }
        }
    }

    #[test]
    fn trimmed_len_honours_minimum_and_trailing_zeros() {
        assert_eq!(trimmed_len(&[0; 30], 1), 1);
        assert_eq!(trimmed_len(&[0, 0, 5, 0, 0], 1), 3);
        let mut lit = [0u8; 288];
        lit[256] = 7;
        assert_eq!(trimmed_len(&lit, 257), 257);
        lit[285] = 4;
        assert_eq!(trimmed_len(&lit, 257), 286);
    }

    #[test]
    fn header_cost_accounts_for_all_bits() {
        let mut lit = [0u8; NUM_LITLEN];
        lit[..257].iter_mut().for_each(|l| *l = 9);
        lit[256] = 9;
        let dist = [5u8; NUM_DIST];
        let header = DynamicHeader::build(&lit, &dist);
        let mut w = LsbBitWriter::new();
        header.write(&mut w);
        assert_eq!(w.bit_len(), header.cost_bits);
    }

    #[test]
    fn empty_input_produces_valid_stream() {
        let out = deflate_raw(&[], CompressionLevel::Default);
        assert!(!out.is_empty());
    }
}
