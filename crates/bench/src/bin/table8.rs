//! Table VIII — single-precision dataset performance.
//!
//! The two S3D float datasets under both preferences: linearization
//! chosen by EUPA, ΔCR and Sp against the relevant alternative.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate};
use isobar_datasets::catalog;

fn main() {
    banner("Table VIII: performance on single-precision datasets");
    println!(
        "{:<11} {:<10} {:>7} {:>8} {:>8} {:>8}",
        "Preference", "Dataset", "Codec", "LS", "ΔCR(%)", "Sp"
    );
    for name in ["s3d_temp", "s3d_vmag"] {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        assert_eq!(ds.width(), 4, "single-precision datasets are 4-byte");
        let zlib = run_codec(&Deflate::default(), &ds.bytes);
        let bzip2 = run_codec(&Bzip2Like::default(), &ds.bytes);

        // ISOBAR-CR: compare against the better-ratio alternative.
        let ratio_run = run_isobar(&ds.bytes, 4, Preference::Ratio);
        let best = if zlib.ratio >= bzip2.ratio {
            zlib
        } else {
            bzip2
        };
        println!(
            "{:<11} {:<10} {:>7} {:>8} {:>8.2} {:>8.3}",
            "ISOBAR-CR",
            name,
            ratio_run.report.codec.name(),
            ratio_run.report.linearization,
            delta_cr_pct(ratio_run.ratio, best.ratio),
            speedup(ratio_run.comp_mbps, best.comp_mbps),
        );

        // ISOBAR-Sp: compare against the faster alternative.
        let speed_run = run_isobar(&ds.bytes, 4, Preference::Speed);
        let fastest = if zlib.comp_mbps >= bzip2.comp_mbps {
            zlib
        } else {
            bzip2
        };
        println!(
            "{:<11} {:<10} {:>7} {:>8} {:>8.2} {:>8.3}",
            "ISOBAR-Sp",
            name,
            speed_run.report.codec.name(),
            speed_run.report.linearization,
            delta_cr_pct(speed_run.ratio, fastest.ratio),
            speedup(speed_run.comp_mbps, fastest.comp_mbps),
        );
    }
    println!();
    println!("paper: ΔCR 34–47%, Sp 2.5–9.4; both datasets identified improvable.");
}
