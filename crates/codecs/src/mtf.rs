//! Move-to-front transform over a generic small alphabet.
//!
//! After the BWT, symbol runs cluster locally; MTF converts that local
//! clustering into a global skew towards small ranks (mostly zeros),
//! which the zero-run encoder and Huffman stage then exploit — the same
//! chain bzip2 uses.

/// Move-to-front encode `input` over the alphabet `0..alphabet_size`.
///
/// Each output value is the current rank of the input symbol; the symbol
/// is then moved to rank 0.
pub fn mtf_encode(input: &[u16], alphabet_size: usize) -> Vec<u16> {
    debug_assert!(alphabet_size <= u16::MAX as usize + 1);
    let mut table: Vec<u16> = (0..alphabet_size as u16).collect();
    let mut out = Vec::with_capacity(input.len());
    for &sym in input {
        let rank = table
            .iter()
            .position(|&t| t == sym)
            .expect("symbol outside alphabet");
        out.push(rank as u16);
        // Rotate the prefix: move `sym` to the front.
        table.copy_within(0..rank, 1);
        table[0] = sym;
    }
    out
}

/// Inverse of [`mtf_encode`].
pub fn mtf_decode(ranks: &[u16], alphabet_size: usize) -> Vec<u16> {
    let mut table: Vec<u16> = (0..alphabet_size as u16).collect();
    let mut out = Vec::with_capacity(ranks.len());
    for &rank in ranks {
        let sym = table[rank as usize];
        out.push(sym);
        table.copy_within(0..rank as usize, 1);
        table[0] = sym;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_example() {
        // Alphabet {0,1,2,3}; classic MTF walk-through.
        let input = [1u16, 1, 1, 3, 3, 0];
        let ranks = mtf_encode(&input, 4);
        assert_eq!(ranks, vec![1, 0, 0, 3, 0, 2]);
        assert_eq!(mtf_decode(&ranks, 4), input);
    }

    #[test]
    fn runs_become_zeros() {
        let input = vec![7u16; 100];
        let ranks = mtf_encode(&input, 16);
        assert_eq!(ranks[0], 7);
        assert!(ranks[1..].iter().all(|&r| r == 0));
    }

    #[test]
    fn round_trips_full_byte_alphabet() {
        let input: Vec<u16> = (0..2000u32).map(|i| ((i * 31) % 256) as u16).collect();
        let ranks = mtf_encode(&input, 256);
        assert_eq!(mtf_decode(&ranks, 256), input);
    }

    #[test]
    fn round_trips_bwt_sized_alphabet() {
        // The BWT stage uses a 257-symbol alphabet (bytes + sentinel).
        let input: Vec<u16> = (0..1000u32).map(|i| ((i * 97) % 257) as u16).collect();
        let ranks = mtf_encode(&input, 257);
        assert!(ranks.iter().all(|&r| r < 257));
        assert_eq!(mtf_decode(&ranks, 257), input);
    }

    #[test]
    fn empty_input() {
        assert!(mtf_encode(&[], 256).is_empty());
        assert!(mtf_decode(&[], 256).is_empty());
    }

    #[test]
    fn first_symbol_rank_equals_its_value() {
        // With the identity initial table, the first rank is the symbol.
        for sym in [0u16, 1, 100, 255] {
            assert_eq!(mtf_encode(&[sym], 256)[0], sym);
        }
    }
}
