//! The end-to-end ISOBAR-compress workflow (paper Fig. 2).
//!
//! [`IsobarCompressor::compress`] drives the full pipeline: EUPA
//! selection on random samples, per-chunk byte-column analysis,
//! partitioning, solver compression of the compressible part, and
//! merging into the self-describing container.
//! [`IsobarCompressor::decompress`] inverts it byte-exactly.

use crate::analyzer::{Analyzer, ColumnSelection};
use crate::chunk::{element_chunks, DEFAULT_CHUNK_ELEMENTS};
use crate::container::{
    chunk_header_len, ChunkMode, ChunkRecord, Header, CHUNK_HEADER_LEN, HEADER_LEN, VERSION,
};
use crate::error::IsobarError;
use crate::eupa::{EupaDecision, EupaSelector, Preference};
use crate::partitioner::{partition_into, reassemble_into};
use isobar_codecs::deflate::adler32;
use isobar_codecs::{codec_for, Codec, CodecId, CodecScratch, CompressionLevel};
use isobar_linearize::Linearization;
use isobar_telemetry::{Counter, Recorder, Stage, StageTimer, TelemetrySnapshot};
use isobar_trace as trace;
use isobar_trace::TraceTag;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for [`IsobarCompressor`].
#[derive(Debug, Clone, Copy)]
pub struct IsobarOptions {
    /// End-user preference driving EUPA (paper input E).
    pub preference: Preference,
    /// Solver effort level.
    pub level: CompressionLevel,
    /// Analyzer tolerance factor τ.
    pub tau: f64,
    /// Chunk size in elements (paper recommends 375 000 ≈ 3 MB).
    pub chunk_elements: usize,
    /// Skip EUPA and force this solver (the paper permits explicit
    /// parameter fixing).
    pub codec_override: Option<CodecId>,
    /// Skip EUPA and force this linearization.
    pub linearization_override: Option<Linearization>,
    /// EUPA sampling configuration.
    pub eupa: EupaSelector,
    /// Compress chunks on multiple threads (extension; the paper's
    /// numbers are single-core).
    pub parallel: bool,
    /// Verify embedded checksums while decoding (default on). Turning
    /// this off trades end-to-end integrity detection for decompress
    /// throughput; structural validation still happens either way.
    pub verify: bool,
}

impl Default for IsobarOptions {
    fn default() -> Self {
        IsobarOptions {
            preference: Preference::Ratio,
            level: CompressionLevel::Default,
            tau: crate::analyzer::DEFAULT_TAU,
            chunk_elements: DEFAULT_CHUNK_ELEMENTS,
            codec_override: None,
            linearization_override: None,
            eupa: EupaSelector::default(),
            parallel: false,
            verify: true,
        }
    }
}

/// Throughput in MB/s (paper convention: 10⁶ bytes) with the elapsed
/// time clamped to a one-microsecond floor.
///
/// Sub-resolution timings — empty inputs, coarse clocks, stages that
/// finish in nanoseconds — would otherwise divide into absurd
/// (`10⁹ MB/s`) or infinite figures that poison averages, speedup
/// ratios, and JSON output downstream. One microsecond caps the
/// reportable rate at `bytes × 10⁶ MB/s` while leaving every honestly
/// measurable timing untouched.
pub fn throughput_mbps(bytes: usize, secs: f64) -> f64 {
    bytes as f64 / 1e6 / secs.max(1e-6)
}

/// Per-chunk outcome, for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkDecision {
    /// How the chunk was encoded.
    pub mode: ChunkMode,
    /// Elements in the chunk.
    pub elements: usize,
    /// Hard-to-compress byte percentage found by the analyzer.
    pub htc_pct: f64,
    /// Analyzer column mask.
    pub mask: u64,
    /// Solver output size.
    pub compressed_len: usize,
    /// Verbatim incompressible bytes.
    pub incompressible_len: usize,
}

/// What happened during one compression run.
#[derive(Debug, Clone)]
pub struct CompressionReport {
    /// Solver chosen (EUPA or override).
    pub codec: CodecId,
    /// Linearization chosen (EUPA or override).
    pub linearization: Linearization,
    /// EUPA sample evidence (empty when both overrides were set).
    pub eupa: Option<EupaDecision>,
    /// Per-chunk decisions.
    pub chunks: Vec<ChunkDecision>,
    /// Input length in bytes.
    pub input_len: usize,
    /// Container length in bytes.
    pub output_len: usize,
    /// Time spent in byte-column analysis (all chunks).
    pub analysis_secs: f64,
    /// Time spent inside the solver (all chunks).
    pub solver_secs: f64,
    /// Time spent in EUPA sampling.
    pub eupa_secs: f64,
    /// Wall time of the whole compress call.
    pub total_secs: f64,
    /// Telemetry recorded during this call — per-stage wall times,
    /// partitioner byte routing, analyzer column outcomes, EUPA trial
    /// timings. All-zero in the telemetry-off build.
    pub telemetry: TelemetrySnapshot,
}

impl CompressionReport {
    /// Compression ratio (Eq. 1).
    pub fn ratio(&self) -> f64 {
        if self.output_len == 0 {
            1.0
        } else {
            self.input_len as f64 / self.output_len as f64
        }
    }

    /// Compression throughput in MB/s over the whole call (see
    /// [`throughput_mbps`] for the degenerate-timing clamp).
    pub fn throughput_mbps(&self) -> f64 {
        throughput_mbps(self.input_len, self.total_secs)
    }

    /// Whether the analyzer identified the dataset as improvable
    /// (Table IV's "Improvable?"): true when any chunk partitioned.
    pub fn improvable(&self) -> bool {
        self.chunks.iter().any(|c| c.mode == ChunkMode::Partitioned)
    }

    /// Element-weighted mean hard-to-compress byte percentage.
    pub fn htc_pct(&self) -> f64 {
        let total: usize = self.chunks.iter().map(|c| c.elements).sum();
        if total == 0 {
            return 0.0;
        }
        self.chunks
            .iter()
            .map(|c| c.htc_pct * c.elements as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Reusable working memory for the per-chunk pipeline loop.
///
/// Holds the solver's [`CodecScratch`] plus the partition buffer that
/// feeds it, so a caller compressing many chunks (or many datasets)
/// through one scratch performs no per-chunk setup allocations in
/// steady state. One scratch belongs to one thread: the serial loops
/// keep one, the parallel paths create one per worker.
#[derive(Default)]
pub struct PipelineScratch {
    codec: CodecScratch,
    /// Partition output fed to the solver during compression, or the
    /// solver's decoded output awaiting reassembly during decompression.
    compressible: Vec<u8>,
}

impl PipelineScratch {
    /// Fresh, empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The ISOBAR-compress preconditioner.
#[derive(Debug, Clone, Copy)]
pub struct IsobarCompressor {
    options: IsobarOptions,
    /// SIMD kernel tier, resolved once here so the per-chunk hot loops
    /// never re-dispatch. `isobar_simd::set_kernels` (the CLI's
    /// `--kernels=` flag) affects compressors constructed afterwards.
    tier: isobar_simd::KernelTier,
}

impl Default for IsobarCompressor {
    fn default() -> Self {
        IsobarCompressor::new(IsobarOptions::default())
    }
}

impl IsobarCompressor {
    /// Create a compressor with the given options.
    pub fn new(options: IsobarOptions) -> Self {
        IsobarCompressor {
            options,
            tier: isobar_simd::active_tier(),
        }
    }

    /// The SIMD kernel tier this pipeline runs on.
    pub fn kernel_tier(&self) -> isobar_simd::KernelTier {
        self.tier
    }

    /// Convenience constructor: defaults with the given preference.
    pub fn with_preference(preference: Preference) -> Self {
        IsobarCompressor::new(IsobarOptions {
            preference,
            ..Default::default()
        })
    }

    /// The active options.
    pub fn options(&self) -> &IsobarOptions {
        &self.options
    }

    /// Compress `data` as elements of `width` bytes.
    ///
    /// # Example
    ///
    /// ```
    /// use isobar::IsobarCompressor;
    ///
    /// let data: Vec<u8> = (0..2000u64).flat_map(u64::to_le_bytes).collect();
    /// let isobar = IsobarCompressor::default();
    /// let packed = isobar.compress(&data, 8).unwrap();
    /// assert_eq!(isobar.decompress(&packed).unwrap(), data);
    /// ```
    pub fn compress(&self, data: &[u8], width: usize) -> Result<Vec<u8>, IsobarError> {
        self.compress_with_report(data, width).map(|(out, _)| out)
    }

    /// [`IsobarCompressor::compress`] reusing caller-held working
    /// memory — the steady-state entry point for callers that compress
    /// many datasets in sequence (e.g. the checkpoint store).
    pub fn compress_with_scratch(
        &self,
        data: &[u8],
        width: usize,
        scratch: &mut PipelineScratch,
    ) -> Result<Vec<u8>, IsobarError> {
        self.compress_with_report_scratch(data, width, scratch)
            .map(|(out, _)| out)
    }

    /// Compress and return the detailed report (per-chunk decisions,
    /// stage timings, and the [`CompressionReport::telemetry`]
    /// snapshot) used by the benchmark harness and `--stats`.
    ///
    /// # Example
    ///
    /// ```
    /// use isobar::telemetry::Counter;
    /// use isobar::IsobarCompressor;
    ///
    /// let data: Vec<u8> = (0..2000u64).flat_map(u64::to_le_bytes).collect();
    /// let (packed, report) = IsobarCompressor::default()
    ///     .compress_with_report(&data, 8)
    ///     .unwrap();
    /// assert_eq!(report.input_len, data.len());
    /// assert_eq!(report.output_len, packed.len());
    /// if isobar::telemetry::ENABLED {
    ///     let snap = &report.telemetry;
    ///     assert_eq!(snap.counter(Counter::AnalyzerBytes), data.len() as u64);
    /// }
    /// ```
    pub fn compress_with_report(
        &self,
        data: &[u8],
        width: usize,
    ) -> Result<(Vec<u8>, CompressionReport), IsobarError> {
        self.compress_with_report_scratch(data, width, &mut PipelineScratch::new())
    }

    /// [`IsobarCompressor::compress`] recording telemetry into a
    /// caller-held [`Recorder`] — for long-lived callers (the
    /// checkpoint store, benchmark loops) that aggregate counters
    /// across many compress calls.
    pub fn compress_recorded(
        &self,
        data: &[u8],
        width: usize,
        scratch: &mut PipelineScratch,
        recorder: &mut Recorder,
    ) -> Result<Vec<u8>, IsobarError> {
        let (out, report) = self.compress_with_report_scratch(data, width, scratch)?;
        recorder.absorb_snapshot(&report.telemetry);
        Ok(out)
    }

    /// [`IsobarCompressor::compress_with_report`] with caller-held
    /// scratch.
    pub fn compress_with_report_scratch(
        &self,
        data: &[u8],
        width: usize,
        scratch: &mut PipelineScratch,
    ) -> Result<(Vec<u8>, CompressionReport), IsobarError> {
        let mut recorder = Recorder::new();
        let recorder = &mut recorder;
        recorder.set_kernel_tier(self.tier.as_u8());
        let t_start = Instant::now();
        if width == 0 || width > 64 {
            return Err(IsobarError::BadWidth(width));
        }
        if !data.len().is_multiple_of(width) {
            return Err(IsobarError::MisalignedInput {
                len: data.len(),
                width,
            });
        }
        let opts = &self.options;
        let analyzer = Analyzer::with_tau(opts.tau);

        // EUPA: decide solver + linearization, unless fully overridden.
        let mut eupa_secs = 0.0;
        let (codec_id, linearization, eupa_decision) =
            match (opts.codec_override, opts.linearization_override) {
                (Some(codec), Some(lin)) => (codec, lin, None),
                (codec_override, lin_override) => {
                    let t = Instant::now();
                    // The sample inherits the head chunk's classification;
                    // undetermined datasets sample as all-compressible.
                    let head = element_chunks(data, width, opts.chunk_elements)
                        .next()
                        .unwrap_or(&[]);
                    let head_sel = analyzer.analyze(head, width)?;
                    let eupa_sel = if head_sel.is_improvable() {
                        head_sel
                    } else {
                        ColumnSelection::new(vec![true; width])
                    };
                    let mut eupa = opts.eupa;
                    eupa.level = opts.level;
                    let decision =
                        eupa.select_recorded(data, width, &eupa_sel, opts.preference, recorder);
                    eupa_secs = t.elapsed().as_secs_f64();
                    (
                        codec_override.unwrap_or(decision.codec),
                        lin_override.unwrap_or(decision.linearization),
                        Some(decision),
                    )
                }
            };
        let codec = codec_for(codec_id, opts.level);

        // Per-chunk analysis + compression.
        let chunks: Vec<&[u8]> = element_chunks(data, width, opts.chunk_elements).collect();
        let results = if opts.parallel && chunks.len() > 1 {
            compress_chunks_parallel(
                &chunks,
                width,
                &analyzer,
                codec.as_ref(),
                linearization,
                recorder,
            )?
        } else {
            let mut results = Vec::with_capacity(chunks.len());
            for (i, chunk) in chunks.iter().enumerate() {
                results.push(compress_chunk(
                    chunk,
                    width,
                    i as u32,
                    &analyzer,
                    codec.as_ref(),
                    linearization,
                    scratch,
                    recorder,
                )?);
            }
            results
        };

        let container_timer = StageTimer::start(Stage::ContainerWrite);
        let container_span = trace::span(TraceTag::ContainerWrite, trace::NO_CHUNK);
        let header = Header {
            version: VERSION,
            width: width as u8,
            codec: codec_id,
            level: opts.level,
            linearization,
            preference: opts.preference.to_u8(),
            chunk_elements: opts.chunk_elements as u32,
            total_len: data.len() as u64,
            checksum: adler32(data),
        };
        // Records are serialized straight into the output buffer — the
        // header is fully known up front, so no intermediate body copy.
        let body_len: usize = results.iter().map(|r| r.record.encoded_len()).sum();
        let mut analysis_secs = 0.0;
        let mut solver_secs = 0.0;
        let mut decisions = Vec::with_capacity(results.len());
        let mut out = Vec::with_capacity(HEADER_LEN + body_len);
        header.write(&mut out);
        for (i, r) in results.iter().enumerate() {
            analysis_secs += r.analysis_secs;
            solver_secs += r.solver_secs;
            decisions.push(r.decision);
            let merge_span = trace::span(TraceTag::ChunkMerge, i as u32);
            r.record.write(&mut out);
            drop(merge_span);
        }
        drop(container_span);
        container_timer.finish(recorder);
        recorder.add(
            Counter::ContainerMetadataBytes,
            (HEADER_LEN + results.len() * CHUNK_HEADER_LEN) as u64,
        );

        let report = CompressionReport {
            codec: codec_id,
            linearization,
            eupa: eupa_decision,
            chunks: decisions,
            input_len: data.len(),
            output_len: out.len(),
            analysis_secs,
            solver_secs,
            eupa_secs,
            total_secs: t_start.elapsed().as_secs_f64(),
            telemetry: recorder.snapshot(),
        };
        Ok((out, report))
    }

    /// Decompress an ISOBAR container back to the original bytes.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, IsobarError> {
        self.decompress_with_scratch(data, &mut PipelineScratch::new())
    }

    /// [`IsobarCompressor::decompress`] reusing caller-held working
    /// memory across calls.
    pub fn decompress_with_scratch(
        &self,
        data: &[u8],
        scratch: &mut PipelineScratch,
    ) -> Result<Vec<u8>, IsobarError> {
        self.decompress_recorded(data, scratch, &mut Recorder::new())
    }

    /// [`IsobarCompressor::decompress`] recording telemetry into a
    /// caller-held [`Recorder`].
    ///
    /// Any failure is a rejection of untrusted input: the error carries
    /// the byte offset of the structure that failed to parse (via
    /// [`IsobarError::At`]) and bumps
    /// [`Counter::ContainerCorruptRejected`].
    pub fn decompress_recorded(
        &self,
        data: &[u8],
        scratch: &mut PipelineScratch,
        recorder: &mut Recorder,
    ) -> Result<Vec<u8>, IsobarError> {
        let result = self.decompress_inner(data, scratch, recorder);
        if let Err(e) = &result {
            recorder.incr(Counter::ContainerCorruptRejected);
            if e.is_checksum_mismatch() {
                recorder.incr(Counter::ChecksumMismatches);
            }
        }
        result
    }

    fn decompress_inner(
        &self,
        data: &[u8],
        scratch: &mut PipelineScratch,
        recorder: &mut Recorder,
    ) -> Result<Vec<u8>, IsobarError> {
        recorder.set_kernel_tier(self.tier.as_u8());
        let container_timer = StageTimer::start(Stage::ContainerRead);
        let container_span = trace::span(TraceTag::ContainerRead, trace::NO_CHUNK);
        let header = Header::read(data).map_err(|e| e.at(0))?;
        let width = header.width as usize;
        let codec = codec_for(header.codec, header.level);

        // Parse all chunk records up front (cheap: payloads are
        // borrowed-range copies), so the decode stage can go parallel.
        // Each record keeps its byte offset so decode-stage failures can
        // point back into the container.
        let mut records: Vec<(u64, ChunkRecord)> = Vec::new();
        let mut cursor = &data[HEADER_LEN..];
        let mut offset = HEADER_LEN as u64;
        let mut claimed: u64 = 0;
        while claimed < header.total_len {
            let (record, consumed) = ChunkRecord::read_bounded(
                cursor,
                width,
                header.chunk_elements,
                header.version,
                self.options.verify,
                offset,
            )
            .map_err(|e| e.at(offset))?;
            if record.elements == 0 {
                return Err(IsobarError::Corrupt("empty chunk record").at(offset));
            }
            cursor = &cursor[consumed..];
            claimed = claimed.saturating_add(record.elements as u64 * width as u64);
            records.push((offset, record));
            offset += consumed as u64;
        }
        if claimed != header.total_len {
            return Err(IsobarError::Corrupt("reassembled length mismatch"));
        }
        drop(container_span);
        container_timer.finish(recorder);
        recorder.add(
            Counter::ContainerMetadataBytes,
            (HEADER_LEN + records.len() * chunk_header_len(header.version)) as u64,
        );

        // Cap the pre-allocation: a corrupted header must not be able
        // to request an absurd reservation before validation fails.
        let capacity = (header.total_len as usize)
            .min(data.len().saturating_mul(512))
            .min(1 << 31);
        let mut out = Vec::with_capacity(capacity);
        if self.options.parallel && records.len() > 1 {
            let chunks = decode_records_parallel(
                &records,
                width,
                codec.as_ref(),
                header.linearization,
                recorder,
            )?;
            for chunk in chunks {
                out.extend_from_slice(&chunk);
            }
        } else {
            for (i, (rec_offset, record)) in records.iter().enumerate() {
                decode_chunk_record(
                    record,
                    width,
                    i as u32,
                    codec.as_ref(),
                    header.linearization,
                    &mut out,
                    scratch,
                    recorder,
                )
                .map_err(|e| e.at(*rec_offset))?;
            }
        }
        if out.len() != header.total_len as usize {
            return Err(IsobarError::Corrupt("reassembled length mismatch"));
        }
        if self.options.verify {
            let actual = adler32(&out);
            if actual != header.checksum {
                // The Adler-32 field sits at byte 24 of the container
                // header (see docs/FORMAT.md).
                return Err(IsobarError::ChecksumMismatch {
                    offset: 24,
                    expected: u64::from(header.checksum),
                    actual: u64::from(actual),
                });
            }
        }
        Ok(out)
    }
}

/// Decode chunk records with a scoped thread pool; results keep order.
/// Each record carries its container byte offset for error reporting.
fn decode_records_parallel(
    records: &[(u64, ChunkRecord)],
    width: usize,
    codec: &dyn Codec,
    linearization: Linearization,
    recorder: &mut Recorder,
) -> Result<Vec<Vec<u8>>, IsobarError> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(records.len());
    let next = AtomicUsize::new(0);
    type Slot = Mutex<Option<Result<Vec<u8>, IsobarError>>>;
    let slots: Vec<Slot> = (0..records.len()).map(|_| Mutex::new(None)).collect();
    // Per-worker recorders merge here at the join; the merge is
    // commutative, so worker scheduling order cannot change the totals.
    let merged = Mutex::new(Recorder::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One scratch per worker: chunks decoded on this thread
                // share solver tables and the reassembly buffer. The
                // recorder follows the same thread-ownership rule.
                let mut scratch = PipelineScratch::new();
                let mut local = Recorder::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= records.len() {
                        break;
                    }
                    let (rec_offset, record) = &records[i];
                    let mut chunk = Vec::new();
                    let result = decode_chunk_record(
                        record,
                        width,
                        i as u32,
                        codec,
                        linearization,
                        &mut chunk,
                        &mut scratch,
                        &mut local,
                    )
                    .map(|()| chunk)
                    .map_err(|e| e.at(*rec_offset));
                    *slots[i].lock().expect("slot poisoned") = Some(result);
                }
                merged.lock().expect("recorder poisoned").absorb(&local);
                // The scope unblocks when this closure returns — before
                // TLS destructors — so hand the trace ring over now.
                trace::flush_thread();
            });
        }
    });
    recorder.absorb(&merged.into_inner().expect("recorder poisoned"));

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("slot filled")
        })
        .collect()
}

/// Intermediate result of compressing one chunk.
struct ChunkResult {
    record: ChunkRecord,
    decision: ChunkDecision,
    analysis_secs: f64,
    solver_secs: f64,
}

/// Encode one chunk: analyze, then partition+solve or pass through
/// (Algorithm 1). Shared by the batch pipeline and the streaming
/// writer.
#[allow(clippy::too_many_arguments)] // internal helper; the chunk index rides along for tracing
pub(crate) fn build_chunk_record(
    chunk: &[u8],
    width: usize,
    chunk_index: u32,
    analyzer: &Analyzer,
    codec: &dyn Codec,
    linearization: Linearization,
    scratch: &mut PipelineScratch,
    recorder: &mut Recorder,
) -> Result<ChunkRecord, IsobarError> {
    let timer = StageTimer::start(Stage::Analyze);
    let analyze_span = trace::span(TraceTag::Analyze, chunk_index);
    let selection = analyzer.analyze_recorded(chunk, width, recorder)?;
    drop(analyze_span);
    timer.finish(recorder);
    let timer = StageTimer::start(Stage::SolverCompress);
    let record = build_chunk_record_with(
        chunk,
        width,
        chunk_index,
        &selection,
        codec,
        linearization,
        scratch,
        recorder,
    )?;
    timer.finish(recorder);
    recorder.incr(Counter::ChunksCompressed);
    recorder.add(Counter::ChunkInputBytes, chunk.len() as u64);
    recorder.add(
        Counter::ChunkOutputBytes,
        (CHUNK_HEADER_LEN + record.compressed.len() + record.incompressible.len()) as u64,
    );
    Ok(record)
}

/// Run the solver behind a panic boundary. Returns `false` (with the
/// output cleared and the scratch replaced — a panicking codec may
/// have left its internal state torn) when the solver panicked; the
/// caller falls back to storing the chunk verbatim instead of
/// aborting the whole file.
fn compress_guarded(
    codec: &dyn Codec,
    input: &[u8],
    out: &mut Vec<u8>,
    scratch: &mut CodecScratch,
) -> bool {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let ok = catch_unwind(AssertUnwindSafe(|| {
        codec.compress_into(input, out, scratch)
    }))
    .is_ok();
    if !ok {
        out.clear();
        *scratch = CodecScratch::default();
    }
    ok
}

/// The graceful-degradation record: the chunk's raw bytes, stored
/// unprocessed under [`ChunkMode::Verbatim`].
fn verbatim_record(chunk: &[u8], elements: u32, recorder: &mut Recorder) -> ChunkRecord {
    recorder.incr(Counter::ChunksVerbatimFallback);
    ChunkRecord {
        mode: ChunkMode::Verbatim,
        elements,
        mask: 0,
        compressed: chunk.to_vec(),
        incompressible: Vec::new(),
    }
}

/// [`build_chunk_record`] with a precomputed analyzer selection.
///
/// The record must own its payload bytes (it outlives the scratch), so
/// the solver output and the verbatim stream are freshly allocated; the
/// partition buffer feeding the solver and all solver-internal state
/// come from `scratch` and are reused across chunks.
#[allow(clippy::too_many_arguments)] // internal helper; the chunk index rides along for tracing
pub(crate) fn build_chunk_record_with(
    chunk: &[u8],
    width: usize,
    chunk_index: u32,
    selection: &ColumnSelection,
    codec: &dyn Codec,
    linearization: Linearization,
    scratch: &mut PipelineScratch,
    recorder: &mut Recorder,
) -> Result<ChunkRecord, IsobarError> {
    let elements = (chunk.len() / width) as u32;
    if selection.is_improvable() {
        // A warm scratch whose partition buffer already holds enough
        // capacity is a reuse hit: the chunk compresses without
        // growing any pipeline-owned buffer.
        let cap_before = scratch.compressible.capacity();
        let mut incompressible = Vec::new();
        let timer = StageTimer::start(Stage::Partition);
        let partition_span = trace::span(TraceTag::Partition, chunk_index);
        partition_into(
            chunk,
            width,
            selection,
            linearization,
            &mut scratch.compressible,
            &mut incompressible,
        );
        drop(partition_span);
        timer.finish(recorder);
        recorder.incr(
            if cap_before > 0 && scratch.compressible.capacity() == cap_before {
                Counter::ScratchReuseHits
            } else {
                Counter::ScratchReuseMisses
            },
        );
        recorder.add(
            Counter::PartitionCompressibleBytes,
            scratch.compressible.len() as u64,
        );
        recorder.add(Counter::PartitionVerbatimBytes, incompressible.len() as u64);
        let mut compressed = Vec::with_capacity(scratch.compressible.len() / 2 + 64);
        let solver_span = trace::span(TraceTag::SolverCompress, chunk_index);
        let ok = compress_guarded(
            codec,
            &scratch.compressible,
            &mut compressed,
            &mut scratch.codec,
        );
        drop(solver_span);
        if !ok {
            return Ok(verbatim_record(chunk, elements, recorder));
        }
        recorder.incr(Counter::ChunksPartitioned);
        Ok(ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements,
            mask: selection.to_mask()?,
            compressed,
            incompressible,
        })
    } else {
        // Undetermined: Algorithm 1 lines 2–3 — whole chunk through
        // the solver.
        let mut compressed = Vec::with_capacity(chunk.len() / 2 + 64);
        let solver_span = trace::span(TraceTag::SolverCompress, chunk_index);
        let ok = compress_guarded(codec, chunk, &mut compressed, &mut scratch.codec);
        drop(solver_span);
        if !ok {
            return Ok(verbatim_record(chunk, elements, recorder));
        }
        recorder.incr(Counter::ChunksPassthrough);
        Ok(ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements,
            mask: 0,
            compressed,
            incompressible: Vec::new(),
        })
    }
}

#[allow(clippy::too_many_arguments)] // internal helper; the chunk index rides along for tracing
fn compress_chunk(
    chunk: &[u8],
    width: usize,
    chunk_index: u32,
    analyzer: &Analyzer,
    codec: &dyn Codec,
    linearization: Linearization,
    scratch: &mut PipelineScratch,
    recorder: &mut Recorder,
) -> Result<ChunkResult, IsobarError> {
    let _chunk_span = trace::span(TraceTag::ChunkCompress, chunk_index);
    let t_analysis = Instant::now();
    let analyze_span = trace::span(TraceTag::Analyze, chunk_index);
    let selection = analyzer.analyze_recorded(chunk, width, recorder)?;
    drop(analyze_span);
    let analysis = t_analysis.elapsed();
    recorder.record_stage(Stage::Analyze, analysis.as_nanos() as u64);
    let analysis_secs = analysis.as_secs_f64();

    let t_solver = Instant::now();
    let record = build_chunk_record_with(
        chunk,
        width,
        chunk_index,
        &selection,
        codec,
        linearization,
        scratch,
        recorder,
    )?;
    let solver = t_solver.elapsed();
    recorder.record_stage(Stage::SolverCompress, solver.as_nanos() as u64);
    let solver_secs = solver.as_secs_f64();

    recorder.incr(Counter::ChunksCompressed);
    recorder.add(Counter::ChunkInputBytes, chunk.len() as u64);
    recorder.add(
        Counter::ChunkOutputBytes,
        (CHUNK_HEADER_LEN + record.compressed.len() + record.incompressible.len()) as u64,
    );

    let decision = ChunkDecision {
        mode: record.mode,
        elements: record.elements as usize,
        htc_pct: selection.htc_pct(),
        mask: record.mask,
        compressed_len: record.compressed.len(),
        incompressible_len: record.incompressible.len(),
    };
    Ok(ChunkResult {
        record,
        decision,
        analysis_secs,
        solver_secs,
    })
}

/// Compress chunks with a scoped thread pool; results keep input order.
fn compress_chunks_parallel(
    chunks: &[&[u8]],
    width: usize,
    analyzer: &Analyzer,
    codec: &dyn Codec,
    linearization: Linearization,
    recorder: &mut Recorder,
) -> Result<Vec<ChunkResult>, IsobarError> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(chunks.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<ChunkResult, IsobarError>>>> =
        (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    // Per-worker recorders merge here at the join; the merge is
    // commutative, so work-stealing order cannot change the totals.
    let merged = Mutex::new(Recorder::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One scratch per worker: every chunk this thread picks
                // up reuses the same hash tables and partition buffer.
                // The recorder follows the same thread-ownership rule.
                let mut scratch = PipelineScratch::new();
                let mut local = Recorder::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let result = compress_chunk(
                        chunks[i],
                        width,
                        i as u32,
                        analyzer,
                        codec,
                        linearization,
                        &mut scratch,
                        &mut local,
                    );
                    *slots[i].lock().expect("slot poisoned") = Some(result);
                }
                merged.lock().expect("recorder poisoned").absorb(&local);
                // The scope unblocks when this closure returns — before
                // TLS destructors — so hand the trace ring over now.
                trace::flush_thread();
            });
        }
    });
    recorder.absorb(&merged.into_inner().expect("recorder poisoned"));

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("slot filled")
        })
        .collect()
}

#[allow(clippy::too_many_arguments)] // internal helper; the chunk index rides along for tracing
pub(crate) fn decode_chunk_record(
    record: &ChunkRecord,
    width: usize,
    chunk_index: u32,
    codec: &dyn Codec,
    linearization: Linearization,
    out: &mut Vec<u8>,
    scratch: &mut PipelineScratch,
    recorder: &mut Recorder,
) -> Result<(), IsobarError> {
    let _chunk_span = trace::span(TraceTag::ChunkDecode, chunk_index);
    let expected = record.elements as usize * width;
    match record.mode {
        ChunkMode::Passthrough => {
            let timer = StageTimer::start(Stage::SolverDecompress);
            let solver_span = trace::span(TraceTag::SolverDecompress, chunk_index);
            codec.decompress_into(
                &record.compressed,
                &mut scratch.compressible,
                &mut scratch.codec,
            )?;
            drop(solver_span);
            timer.finish(recorder);
            if scratch.compressible.len() != expected {
                return Err(IsobarError::Corrupt("passthrough chunk length mismatch"));
            }
            out.extend_from_slice(&scratch.compressible);
        }
        ChunkMode::Verbatim => {
            // Raw bytes, stored when the solver panicked at compress
            // time; length was validated against elements × width.
            if record.compressed.len() != expected {
                return Err(IsobarError::Corrupt("verbatim chunk length mismatch"));
            }
            out.extend_from_slice(&record.compressed);
        }
        ChunkMode::Partitioned => {
            let selection = record.selection(width)?;
            let timer = StageTimer::start(Stage::SolverDecompress);
            let solver_span = trace::span(TraceTag::SolverDecompress, chunk_index);
            codec.decompress_into(
                &record.compressed,
                &mut scratch.compressible,
                &mut scratch.codec,
            )?;
            drop(solver_span);
            timer.finish(recorder);
            if scratch.compressible.len() + record.incompressible.len() != expected {
                return Err(IsobarError::Corrupt("partitioned chunk length mismatch"));
            }
            // Scatter both streams straight into the output buffer — no
            // intermediate per-chunk allocation or copy.
            let start = out.len();
            out.resize(start + expected, 0);
            let timer = StageTimer::start(Stage::Reassemble);
            let reassemble_span = trace::span(TraceTag::Reassemble, chunk_index);
            reassemble_into(
                &scratch.compressible,
                &record.incompressible,
                width,
                &selection,
                linearization,
                &mut out[start..],
            );
            drop(reassemble_span);
            timer.finish(recorder);
        }
    }
    recorder.incr(Counter::ChunksDecompressed);
    recorder.add(Counter::ChunkDecodedBytes, expected as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Improvable data: half predictable, half noise per element.
    fn improvable_data(n: usize) -> Vec<u8> {
        let mut state = 0x853C49E6748FEA9Bu64;
        (0..n)
            .flat_map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = state >> 32;
                let pred = (i as u64 / 100) % 50;
                ((pred << 32) | noise).to_le_bytes()
            })
            .collect()
    }

    /// Uniform noise: undetermined (all columns incompressible).
    fn noise_data(n: usize) -> Vec<u8> {
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n * 8)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    }

    fn compressor(pref: Preference) -> IsobarCompressor {
        // Chunks well above the statistical floor (the analyzer's
        // τ·N/256 test needs a few tens of thousands of elements to be
        // stable — the paper's Fig. 8 point), but small enough for fast
        // unit tests. Test inputs are multiples of the chunk size so no
        // statistically-marginal tail chunk appears.
        IsobarCompressor::new(IsobarOptions {
            preference: pref,
            chunk_elements: 25_000,
            eupa: EupaSelector {
                sample_elements: 2048,
                sample_blocks: 2,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn improvable_round_trip_with_report() {
        let data = improvable_data(50_000);
        let isobar = compressor(Preference::Speed);
        let (packed, report) = isobar.compress_with_report(&data, 8).unwrap();
        assert_eq!(isobar.decompress(&packed).unwrap(), data);
        assert!(report.improvable());
        assert!(report.ratio() > 1.0, "ratio {}", report.ratio());
        assert_eq!(report.chunks.len(), 2);
        assert!((report.htc_pct() - 50.0).abs() < 1e-9);
        assert_eq!(report.input_len, data.len());
        assert_eq!(report.output_len, packed.len());
    }

    #[test]
    fn undetermined_round_trip() {
        let data = noise_data(50_000);
        let isobar = compressor(Preference::Speed);
        let (packed, report) = isobar.compress_with_report(&data, 8).unwrap();
        assert_eq!(isobar.decompress(&packed).unwrap(), data);
        assert!(!report.improvable());
        assert!(report
            .chunks
            .iter()
            .all(|c| c.mode == ChunkMode::Passthrough));
    }

    #[test]
    fn both_preferences_round_trip() {
        let data = improvable_data(20_000);
        for pref in [Preference::Ratio, Preference::Speed] {
            let isobar = compressor(pref);
            let packed = isobar.compress(&data, 8).unwrap();
            assert_eq!(isobar.decompress(&packed).unwrap(), data, "{pref:?}");
        }
    }

    #[test]
    fn overrides_bypass_eupa() {
        let data = improvable_data(20_000);
        let isobar = IsobarCompressor::new(IsobarOptions {
            codec_override: Some(CodecId::Bzip2Like),
            linearization_override: Some(Linearization::Column),
            chunk_elements: 10_000,
            ..Default::default()
        });
        let (packed, report) = isobar.compress_with_report(&data, 8).unwrap();
        assert_eq!(report.codec, CodecId::Bzip2Like);
        assert_eq!(report.linearization, Linearization::Column);
        assert!(report.eupa.is_none());
        assert_eq!(report.eupa_secs, 0.0);
        assert_eq!(isobar.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn all_widths_round_trip() {
        for width in [1usize, 2, 3, 4, 5, 8, 12, 16] {
            let mut state = 7u64;
            let data: Vec<u8> = (0..width * 5000)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if i % width < width / 2 {
                        (state >> 33) as u8
                    } else {
                        (i / width % 16) as u8
                    }
                })
                .collect();
            let isobar = compressor(Preference::Speed);
            let packed = isobar.compress(&data, width).unwrap();
            assert_eq!(isobar.decompress(&packed).unwrap(), data, "width {width}");
        }
    }

    #[test]
    fn empty_input_round_trips() {
        let isobar = compressor(Preference::Ratio);
        let packed = isobar.compress(&[], 8).unwrap();
        assert_eq!(isobar.decompress(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn misaligned_and_bad_width_rejected() {
        let isobar = compressor(Preference::Ratio);
        assert!(matches!(
            isobar.compress(&[0u8; 10], 8),
            Err(IsobarError::MisalignedInput { .. })
        ));
        assert!(matches!(
            isobar.compress(&[], 0),
            Err(IsobarError::BadWidth(0))
        ));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let data = improvable_data(60_000);
        let serial = IsobarCompressor::new(IsobarOptions {
            chunk_elements: 8_000,
            codec_override: Some(CodecId::Deflate),
            linearization_override: Some(Linearization::Row),
            ..Default::default()
        });
        let parallel = IsobarCompressor::new(IsobarOptions {
            parallel: true,
            ..*serial.options()
        });
        let a = serial.compress(&data, 8).unwrap();
        let b = parallel.compress(&data, 8).unwrap();
        assert_eq!(a, b);
        assert_eq!(parallel.decompress(&b).unwrap(), data);
        // Cross-decodes: parallel decode of serial output and vice versa.
        assert_eq!(parallel.decompress(&a).unwrap(), data);
        assert_eq!(serial.decompress(&b).unwrap(), data);

        // Scratch reuse must not change a single byte either: run two
        // dissimilar datasets through one warm scratch and compare
        // against the fresh-scratch outputs above.
        let other = noise_data(20_000);
        let mut scratch = PipelineScratch::new();
        let warm_other = serial
            .compress_with_scratch(&other, 8, &mut scratch)
            .unwrap();
        let warm_a = serial
            .compress_with_scratch(&data, 8, &mut scratch)
            .unwrap();
        assert_eq!(warm_other, serial.compress(&other, 8).unwrap());
        assert_eq!(warm_a, a);
        assert_eq!(
            serial
                .decompress_with_scratch(&warm_a, &mut scratch)
                .unwrap(),
            data
        );
        assert_eq!(
            serial
                .decompress_with_scratch(&warm_other, &mut scratch)
                .unwrap(),
            other
        );
    }

    /// A solver that dies on every chunk — the failure the pipeline's
    /// catch_unwind fallback must absorb.
    struct PanickyCodec;

    impl Codec for PanickyCodec {
        fn id(&self) -> CodecId {
            CodecId::Deflate
        }
        fn compress(&self, _data: &[u8]) -> Vec<u8> {
            panic!("injected solver failure")
        }
        fn decompress(&self, _data: &[u8]) -> Result<Vec<u8>, isobar_codecs::CodecError> {
            panic!("injected solver failure")
        }
    }

    #[test]
    fn solver_panic_falls_back_to_verbatim_chunk() {
        let data = improvable_data(10_000);
        let analyzer = Analyzer::with_tau(crate::analyzer::DEFAULT_TAU);
        let mut scratch = PipelineScratch::new();
        let mut recorder = Recorder::new();
        let record = build_chunk_record(
            &data,
            8,
            0,
            &analyzer,
            &PanickyCodec,
            Linearization::Row,
            &mut scratch,
            &mut recorder,
        )
        .expect("panic must degrade, not propagate");
        assert_eq!(record.mode, ChunkMode::Verbatim);
        assert_eq!(record.compressed, data);
        assert!(record.incompressible.is_empty());
        if isobar_telemetry::ENABLED {
            assert_eq!(
                recorder.snapshot().counter(Counter::ChunksVerbatimFallback),
                1
            );
        }

        // A container carrying the fallback chunk decodes back to the
        // original bytes without consulting any solver.
        let header = Header {
            version: VERSION,
            width: 8,
            codec: CodecId::Deflate,
            level: CompressionLevel::Default,
            linearization: Linearization::Row,
            preference: 0,
            chunk_elements: (data.len() / 8) as u32,
            total_len: data.len() as u64,
            checksum: adler32(&data),
        };
        let mut packed = Vec::new();
        header.write(&mut packed);
        record.write(&mut packed);
        assert_eq!(
            IsobarCompressor::default().decompress(&packed).unwrap(),
            data
        );
    }

    #[test]
    fn verify_off_decodes_and_skips_checksum_rejection() {
        let data = improvable_data(20_000);
        let isobar = compressor(Preference::Speed);
        let packed = isobar.compress(&data, 8).unwrap();
        let relaxed = IsobarCompressor::new(IsobarOptions {
            verify: false,
            ..*isobar.options()
        });
        // Clean container: identical output either way.
        assert_eq!(relaxed.decompress(&packed).unwrap(), data);

        // Flip one bit inside the last chunk's payload: verify-on
        // pinpoints the damaged chunk via its checksum.
        let mut bad = packed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(isobar.decompress(&bad).unwrap_err().is_checksum_mismatch());
    }

    #[test]
    fn throughput_is_finite_even_for_degenerate_timings() {
        let report = CompressionReport {
            codec: CodecId::Deflate,
            linearization: Linearization::Row,
            eupa: None,
            chunks: Vec::new(),
            input_len: 1_000_000,
            output_len: 10,
            analysis_secs: 0.0,
            solver_secs: 0.0,
            eupa_secs: 0.0,
            total_secs: 0.0,
            telemetry: TelemetrySnapshot::default(),
        };
        assert!(report.throughput_mbps().is_finite());
        // Normal timings still divide through as before.
        let normal = CompressionReport {
            total_secs: 2.0,
            ..report
        };
        assert!((normal.throughput_mbps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_decompress_rejects_corruption_like_serial() {
        let data = improvable_data(40_000);
        let isobar = IsobarCompressor::new(IsobarOptions {
            chunk_elements: 8_000,
            parallel: true,
            codec_override: Some(CodecId::Deflate),
            linearization_override: Some(Linearization::Row),
            ..Default::default()
        });
        let packed = isobar.compress(&data, 8).unwrap();
        let mut bad = packed.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x04;
        match isobar.decompress(&bad) {
            Err(_) => {}
            Ok(out) => assert_eq!(out, data, "silent corruption"),
        }
    }

    #[test]
    fn corrupted_container_is_rejected() {
        let data = improvable_data(20_000);
        let isobar = compressor(Preference::Speed);
        let packed = isobar.compress(&data, 8).unwrap();

        // Truncations at various depths.
        for cut in [0, HEADER_LEN - 1, HEADER_LEN + 3, packed.len() - 1] {
            assert!(isobar.decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
        // Bit flip in a payload.
        let mut bad = packed.clone();
        let mid = packed.len() / 2;
        bad[mid] ^= 0x01;
        assert!(isobar.decompress(&bad).is_err());
    }

    #[test]
    fn incompressible_bytes_are_stored_not_expanded() {
        // The container must not pay solver overhead on the noise
        // columns: output ≤ input + small metadata.
        let data = noise_data(40_000);
        let isobar = compressor(Preference::Speed);
        let (packed, _) = isobar.compress_with_report(&data, 8).unwrap();
        assert!(
            packed.len() < data.len() + data.len() / 50 + 256,
            "{} vs {}",
            packed.len(),
            data.len()
        );
    }

    #[test]
    fn report_throughput_and_timings_are_populated() {
        let data = improvable_data(30_000);
        let isobar = compressor(Preference::Speed);
        let (_, report) = isobar.compress_with_report(&data, 8).unwrap();
        assert!(report.total_secs > 0.0);
        assert!(report.analysis_secs > 0.0);
        assert!(report.solver_secs > 0.0);
        assert!(report.eupa_secs > 0.0);
        assert!(report.throughput_mbps() > 0.0);
    }
}
