//! Fuzz driver: run every decode layer under fault injection.
//!
//! ```text
//! isobar-fuzz-harness [--iters N] [--seed HEX] [--layer NAME]... [--list] [--kernels scalar|auto]
//! isobar-fuzz-harness --crash-sweep [--seed HEX]
//! isobar-fuzz-harness --crash-sweep-sharded [--seed HEX]
//! isobar-fuzz-harness --serve-crash-sweep [--seed HEX]
//! isobar-fuzz-harness --store-stress [--seed HEX]
//! ```
//!
//! Exits 0 when every layer completes its iterations with zero panics
//! and zero allocation-bound violations; exits 1 with a reproducible
//! one-line report otherwise. `--crash-sweep` instead runs the store
//! commit-protocol crash-injection sweep, `--crash-sweep-sharded` the
//! version-3 two-phase manifest-commit sweep (see the `crash` module),
//! `--serve-crash-sweep` the serve daemon's acked-means-durable sweep
//! over the write-ahead journal (see the `serve_crash` module), and
//! `--store-stress` the concurrent producer/reader storm over one
//! sharded store under the counting allocator (see the `stress`
//! module).

use isobar_fuzz_harness::{
    all_layers, alloc_track, alloc_track::PeakAlloc, crash, serve_crash, stress, DEFAULT_SEED,
};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

fn main() {
    let mut iters: u64 = 10_000;
    let mut seed: u64 = DEFAULT_SEED;
    let mut selected: Vec<String> = Vec::new();
    let mut list = false;
    let mut crash_sweep = false;
    let mut crash_sweep_sharded = false;
    let mut serve_crash_sweep = false;
    let mut store_stress = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = expect_value(&args, &mut i, "--iters")
                    .parse()
                    .unwrap_or_else(|_| usage("--iters takes a positive integer"));
            }
            "--seed" => {
                let raw = expect_value(&args, &mut i, "--seed");
                let raw = raw.trim_start_matches("0x");
                seed = u64::from_str_radix(raw, 16)
                    .unwrap_or_else(|_| usage("--seed takes a hex value"));
            }
            "--layer" => {
                selected.push(expect_value(&args, &mut i, "--layer"));
            }
            "--kernels" => {
                let raw = expect_value(&args, &mut i, "--kernels");
                let selection = isobar::KernelSelection::parse(&raw)
                    .unwrap_or_else(|| usage("--kernels takes scalar or auto"));
                isobar::set_kernels(selection);
            }
            "--list" => list = true,
            "--crash-sweep" => crash_sweep = true,
            "--crash-sweep-sharded" => crash_sweep_sharded = true,
            "--serve-crash-sweep" => serve_crash_sweep = true,
            "--store-stress" => store_stress = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    if crash_sweep {
        match crash::crash_sweep(seed) {
            Ok(o) => {
                println!(
                    "crash-sweep    {} kill points, {} views checked: {} old, {} new — commit protocol holds",
                    o.kill_points, o.views_checked, o.saw_old, o.saw_new
                );
            }
            Err(e) => {
                eprintln!("FAIL crash-sweep (seed {seed:#018x}): {e}");
                std::process::exit(1);
            }
        }
    }
    if crash_sweep_sharded {
        match crash::crash_sweep_sharded(seed) {
            Ok(o) => {
                println!(
                    "crash-sweep-v3 {} kill points, {} views checked: {} old, {} new — two-phase manifest commit holds",
                    o.kill_points, o.views_checked, o.saw_old, o.saw_new
                );
            }
            Err(e) => {
                eprintln!("FAIL crash-sweep-sharded (seed {seed:#018x}): {e}");
                std::process::exit(1);
            }
        }
    }
    if serve_crash_sweep {
        match serve_crash::serve_crash_sweep(seed) {
            Ok(o) => {
                println!(
                    "serve-crash    {} kill points, {} views checked, {} acked puts verified ({} journal-served, {} committed) — acked means durable",
                    o.kill_points, o.views_checked, o.acked_verified, o.overlay_served, o.committed_served
                );
            }
            Err(e) => {
                eprintln!("FAIL serve-crash-sweep (seed {seed:#018x}): {e}");
                std::process::exit(1);
            }
        }
    }
    if store_stress {
        alloc_track::reset_peak();
        match stress::store_stress(seed, 8, 16, 200) {
            Ok(o) => {
                println!(
                    "store-stress   {} puts, {} concurrent gets, {} verified, {} superseded, peak alloc {} KiB — sharded store holds under contention",
                    o.puts,
                    o.gets,
                    o.verified,
                    o.superseded,
                    alloc_track::peak() / 1024
                );
            }
            Err(e) => {
                eprintln!("FAIL store-stress (seed {seed:#018x}): {e}");
                std::process::exit(1);
            }
        }
    }
    if crash_sweep || crash_sweep_sharded || serve_crash_sweep || store_stress {
        return;
    }

    let layers = all_layers();
    if list {
        for layer in &layers {
            println!("{}", layer.name());
        }
        return;
    }
    for name in &selected {
        if !layers.iter().any(|l| l.name() == name) {
            usage(&format!("unknown layer {name} (try --list)"));
        }
    }

    println!("kernels: {}", isobar::active_kernel_tier());

    let mut failed = false;
    for layer in &layers {
        if !selected.is_empty() && !selected.iter().any(|n| n == layer.name()) {
            continue;
        }
        match layer.run(seed, iters) {
            Ok(o) => println!(
                "{:<14} {} iterations: {} accepted, {} rejected, peak decode alloc {} KiB",
                o.name,
                o.iterations,
                o.accepted,
                o.rejected,
                o.max_alloc / 1024
            ),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn expect_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i)
        .cloned()
        .unwrap_or_else(|| usage(&format!("{flag} requires a value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: isobar-fuzz-harness [--iters N] [--seed HEX] [--layer NAME]... [--list] [--crash-sweep] [--crash-sweep-sharded] [--serve-crash-sweep] [--store-stress] [--kernels scalar|auto]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
