//! PFOR / PFOR-DELTA: patched frame-of-reference integer compression.
//!
//! Reimplementation of the related-work baseline the paper discusses
//! (§IV; Zukowski et al., *Super-Scalar RAM-CPU Cache Compression*,
//! ICDE 2006). Values are processed in blocks of 128: each block
//! stores a base (the block minimum), a fixed bit width `b`, the
//! 128 offsets bit-packed at `b` bits, and a patch list of *exceptions*
//! — values whose offset does not fit — stored verbatim. PFOR-DELTA
//! applies the same coding to consecutive differences.
//!
//! The published claim to reproduce (`related_work` bench): PFOR
//! decompresses several times faster than zlib/bzlib2 but rarely beats
//! their ratios, sometimes losing by 3×.

use crate::codec::CodecError;

/// Values per block (the paper's cache-friendly unit).
pub const BLOCK: usize = 128;

const MAGIC: [u8; 4] = *b"PFR1";

/// Encode `values` with PFOR (`delta = false`) or PFOR-DELTA
/// (`delta = true`).
///
/// # Example
///
/// ```
/// use isobar_codecs::pfor::{pfor_decode, pfor_encode};
///
/// // Timestamps with a near-constant stride: PFOR-DELTA packs the
/// // small differences into a few bits each.
/// let values: Vec<u64> = (0..10_000).map(|i| 1_700_000_000 + i * 60).collect();
/// let packed = pfor_encode(&values, true);
/// assert!(packed.len() < values.len()); // < 1 byte per 8-byte value
/// assert_eq!(pfor_decode(&packed).unwrap(), values);
/// ```
pub fn pfor_encode(values: &[u64], delta: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2 + 16);
    out.extend_from_slice(&MAGIC);
    out.push(delta as u8);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());

    let mut prev = 0u64;
    let mut scratch = [0u64; BLOCK];
    for block in values.chunks(BLOCK) {
        let coded: &[u64] = if delta {
            for (slot, &v) in scratch.iter_mut().zip(block) {
                // Wrapping differences keep the transform bijective for
                // arbitrary u64 input (zigzag keeps them small when the
                // data is smooth).
                *slot = zigzag(v.wrapping_sub(prev));
                prev = v;
            }
            &scratch[..block.len()]
        } else {
            block
        };
        encode_block(&mut out, coded);
    }
    out
}

/// Decode a stream produced by [`pfor_encode`].
pub fn pfor_decode(data: &[u8]) -> Result<Vec<u64>, CodecError> {
    if data.len() < 13 || data[..4] != MAGIC {
        return Err(CodecError::Corrupt("bad PFOR header"));
    }
    let delta = match data[4] {
        0 => false,
        1 => true,
        _ => return Err(CodecError::Corrupt("bad PFOR delta flag")),
    };
    let count = u64::from_le_bytes(data[5..13].try_into().expect("8 bytes")) as usize;
    // Each value needs at least a fraction of a byte; bound allocations.
    if count > data.len().saturating_mul(BLOCK) {
        return Err(CodecError::Corrupt("implausible PFOR count"));
    }
    let mut cursor = &data[13..];
    let mut values = Vec::with_capacity(count);
    while values.len() < count {
        let in_block = BLOCK.min(count - values.len());
        cursor = decode_block(cursor, in_block, &mut values)?;
    }
    if delta {
        let mut prev = 0u64;
        for v in &mut values {
            prev = prev.wrapping_add(unzigzag(*v));
            *v = prev;
        }
    }
    Ok(values)
}

#[inline]
fn zigzag(d: u64) -> u64 {
    let s = d as i64;
    ((s << 1) ^ (s >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> u64 {
    ((z >> 1) as i64 ^ -((z & 1) as i64)) as u64
}

/// Pick the bit width minimizing the block's encoded size: packed bits
/// plus 9 bytes per exception.
fn choose_width(offsets: &[u64]) -> u32 {
    let mut best = (usize::MAX, 64u32);
    for b in 0..=64u32 {
        let fits = |&o: &u64| b == 64 || o < (1u64 << b);
        let exceptions = offsets.iter().filter(|o| !fits(o)).count();
        let size = (offsets.len() * b as usize).div_ceil(8) + exceptions * 9;
        if size < best.0 {
            best = (size, b);
        }
    }
    best.1
}

/// Block layout: base u64 | width u8 | n_exceptions u8 |
/// packed offsets (len·width bits, byte aligned) |
/// exceptions: (position u8, value u64)*
fn encode_block(out: &mut Vec<u8>, block: &[u64]) {
    debug_assert!(!block.is_empty() && block.len() <= BLOCK);
    let base = *block.iter().min().expect("non-empty block");
    let offsets: Vec<u64> = block.iter().map(|&v| v - base).collect();
    let width = choose_width(&offsets);

    out.extend_from_slice(&base.to_le_bytes());
    out.push(width as u8);
    let fits = |o: u64| width == 64 || o < (1u64 << width);
    let exceptions: Vec<(u8, u64)> = offsets
        .iter()
        .enumerate()
        .filter(|&(_, &o)| !fits(o))
        .map(|(i, &o)| (i as u8, o))
        .collect();
    out.push(exceptions.len() as u8);

    // Bit-pack offsets LSB-first; exception slots hold zero.
    let mut acc = 0u128;
    let mut nbits = 0u32;
    for &o in &offsets {
        let coded = if fits(o) { o } else { 0 };
        acc |= (coded as u128) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }

    for (pos, offset) in exceptions {
        out.push(pos);
        out.extend_from_slice(&offset.to_le_bytes());
    }
}

fn decode_block<'a>(
    data: &'a [u8],
    in_block: usize,
    values: &mut Vec<u64>,
) -> Result<&'a [u8], CodecError> {
    if data.len() < 10 {
        return Err(CodecError::UnexpectedEof);
    }
    let base = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
    let width = data[8] as u32;
    if width > 64 {
        return Err(CodecError::Corrupt("PFOR width out of range"));
    }
    let n_exceptions = data[9] as usize;
    let packed_len = (in_block * width as usize).div_ceil(8);
    let total = 10 + packed_len + n_exceptions * 9;
    if data.len() < total {
        return Err(CodecError::UnexpectedEof);
    }

    let packed = &data[10..10 + packed_len];
    let start = values.len();
    let mut acc = 0u128;
    let mut nbits = 0u32;
    let mut byte_pos = 0usize;
    let mask = if width == 64 {
        u64::MAX
    } else if width == 0 {
        0
    } else {
        (1u64 << width) - 1
    };
    for _ in 0..in_block {
        while nbits < width {
            acc |= (packed[byte_pos] as u128) << nbits;
            byte_pos += 1;
            nbits += 8;
        }
        let offset = (acc as u64) & mask;
        acc >>= width;
        nbits -= width;
        values.push(base.wrapping_add(offset));
    }

    let mut cursor = &data[10 + packed_len..total];
    for _ in 0..n_exceptions {
        let pos = cursor[0] as usize;
        if pos >= in_block {
            return Err(CodecError::Corrupt("PFOR exception position out of range"));
        }
        let offset = u64::from_le_bytes(cursor[1..9].try_into().expect("8 bytes"));
        values[start + pos] = base.wrapping_add(offset);
        cursor = &cursor[9..];
    }
    Ok(&data[total..])
}

/// Byte-oriented convenience wrappers: interpret `data` as little-
/// endian u64 values (length must be a multiple of 8).
pub fn pfor_compress_bytes(data: &[u8], delta: bool) -> Vec<u8> {
    assert!(
        data.len().is_multiple_of(8),
        "PFOR input must be whole u64s"
    );
    let values: Vec<u64> = data
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    pfor_encode(&values, delta)
}

/// Inverse of [`pfor_compress_bytes`].
pub fn pfor_decompress_bytes(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    Ok(pfor_decode(data)?
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64]) {
        for delta in [false, true] {
            let packed = pfor_encode(values, delta);
            assert_eq!(
                pfor_decode(&packed).unwrap(),
                values,
                "delta {delta}, {} values",
                values.len()
            );
        }
    }

    #[test]
    fn basic_round_trips() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[42; 1000]);
        round_trip(&(0..1000u64).collect::<Vec<_>>());
        round_trip(&[u64::MAX, 0, u64::MAX / 2, 1]);
    }

    #[test]
    fn small_range_values_pack_tightly() {
        // Values in a 256-wide band: ~1 byte per value + block headers.
        let values: Vec<u64> = (0..10_000u64).map(|i| 1_000_000 + (i * 37) % 256).collect();
        let packed = pfor_encode(&values, false);
        assert!(
            packed.len() < values.len() * 2,
            "{} bytes for {} values",
            packed.len(),
            values.len()
        );
        round_trip(&values);
    }

    #[test]
    fn delta_mode_wins_on_sorted_data() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 1000).collect();
        let plain = pfor_encode(&values, false);
        let delta = pfor_encode(&values, true);
        assert!(
            delta.len() < plain.len(),
            "delta {} plain {}",
            delta.len(),
            plain.len()
        );
    }

    #[test]
    fn exceptions_patch_outliers() {
        // Mostly tiny values with rare huge outliers: the block should
        // pick a small width and patch the outliers.
        let mut values: Vec<u64> = (0..1024u64).map(|i| i % 16).collect();
        values[100] = u64::MAX;
        values[700] = 1 << 50;
        let packed = pfor_encode(&values, false);
        // Far below 8 bytes/value despite the outliers.
        assert!(packed.len() < values.len() * 2);
        round_trip(&values);
    }

    #[test]
    fn random_data_round_trips_with_bounded_expansion() {
        let mut state = 11u64;
        let values: Vec<u64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        let packed = pfor_encode(&values, false);
        assert!(packed.len() <= values.len() * 8 + (values.len() / BLOCK + 1) * 16 + 16);
        round_trip(&values);
    }

    #[test]
    fn partial_final_block() {
        round_trip(&(0..BLOCK as u64 + 37).collect::<Vec<_>>());
        round_trip(&(0..BLOCK as u64 - 1).collect::<Vec<_>>());
    }

    #[test]
    fn byte_wrappers_round_trip() {
        let data: Vec<u8> = (0..4096u64).flat_map(|i| (i % 300).to_le_bytes()).collect();
        for delta in [false, true] {
            let packed = pfor_compress_bytes(&data, delta);
            assert_eq!(pfor_decompress_bytes(&packed).unwrap(), data);
        }
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let packed = pfor_encode(&[1, 2, 3], false);
        assert!(pfor_decode(&packed[..4]).is_err());
        let mut bad = packed.clone();
        bad[0] = b'X';
        assert!(pfor_decode(&bad).is_err());
        // Truncated mid-block.
        assert!(pfor_decode(&packed[..packed.len() - 1]).is_err());
    }

    #[test]
    fn choose_width_minimizes_size() {
        // All values fit in 4 bits → width 4, no exceptions.
        let offsets: Vec<u64> = (0..128u64).map(|i| i % 16).collect();
        assert_eq!(choose_width(&offsets), 4);
        // One huge outlier among 4-bit values → still width 4 + patch.
        let mut with_outlier = offsets.clone();
        with_outlier[3] = 1 << 40;
        assert_eq!(choose_width(&with_outlier), 4);
    }
}
