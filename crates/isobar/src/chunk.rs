//! Input chunking (§II.D).
//!
//! Extreme-scale inputs are processed in fixed-size element chunks so
//! the analyzer's statistics stay local and memory stays bounded. The
//! paper finds compression ratios settle once chunks reach ≈ 375 000
//! doubles (≈ 3 MB, Fig. 8), consistent with block-size folklore for
//! adaptive compressors; that is the default here.

/// Default chunk size in elements (the paper's recommendation).
pub const DEFAULT_CHUNK_ELEMENTS: usize = 375_000;

/// Iterate over `data` in chunks of `chunk_elements` elements of
/// `width` bytes; the final chunk may be short.
pub fn element_chunks(
    data: &[u8],
    width: usize,
    chunk_elements: usize,
) -> impl Iterator<Item = &[u8]> {
    debug_assert!(width > 0 && data.len().is_multiple_of(width));
    debug_assert!(chunk_elements > 0);
    data.chunks(chunk_elements * width)
}

/// Number of chunks the input will produce.
pub fn chunk_count(len: usize, width: usize, chunk_elements: usize) -> usize {
    len.div_ceil(chunk_elements * width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_input_exactly() {
        let data: Vec<u8> = (0..100u8).collect(); // 25 elements of width 4
        let chunks: Vec<&[u8]> = element_chunks(&data, 4, 10).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 40);
        assert_eq!(chunks[1].len(), 40);
        assert_eq!(chunks[2].len(), 20); // short tail
        let rebuilt: Vec<u8> = chunks.concat();
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn exact_multiple_has_no_tail() {
        let data = vec![0u8; 80];
        let chunks: Vec<&[u8]> = element_chunks(&data, 4, 10).collect();
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|c| c.len() == 40));
    }

    #[test]
    fn empty_input_has_no_chunks() {
        assert_eq!(element_chunks(&[], 8, 100).count(), 0);
        assert_eq!(chunk_count(0, 8, 100), 0);
    }

    #[test]
    fn chunk_count_matches_iterator() {
        for len_elems in [1usize, 9, 10, 11, 100, 375_000 / 8] {
            let data = vec![0u8; len_elems * 8];
            assert_eq!(
                chunk_count(data.len(), 8, 10),
                element_chunks(&data, 8, 10).count(),
                "{len_elems} elements"
            );
        }
    }

    #[test]
    fn default_is_the_papers_three_megabytes() {
        assert_eq!(DEFAULT_CHUNK_ELEMENTS * 8, 3_000_000);
    }
}
