//! Criterion benches for the standalone codecs.
//!
//! Throughput of compression and decompression for both ISOBAR solvers
//! and both floating-point baselines, on a representative
//! hard-to-compress buffer (gts-like doubles). These are the numbers
//! behind Table V's zlib/bzlib2 columns and Table X's FPC/fpzip
//! columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use isobar_codecs::lz77::{Matcher, MatcherScratch};
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate, Codec, CompressionLevel};
use isobar_datasets::catalog;
use isobar_float_codecs::{Dims, Fpc, FpzipLike};

const ELEMENTS: usize = 375_000; // one paper chunk ≈ 3 MB

fn bench_general_codecs(c: &mut Criterion) {
    let ds = catalog::spec("gts_chkp_zion")
        .expect("catalog entry")
        .generate(ELEMENTS, 7);
    let mut group = c.benchmark_group("general_codecs");
    group.throughput(Throughput::Bytes(ds.bytes.len() as u64));
    group.sample_size(10);

    for codec in [&Deflate::default() as &dyn Codec, &Bzip2Like::default()] {
        group.bench_with_input(
            BenchmarkId::new("compress", codec.name()),
            &ds.bytes,
            |b, data| b.iter(|| codec.compress(data)),
        );
        let packed = codec.compress(&ds.bytes);
        group.bench_with_input(
            BenchmarkId::new("decompress", codec.name()),
            &packed,
            |b, data| b.iter(|| codec.decompress(data).expect("own stream")),
        );
    }
    group.finish();
}

fn bench_float_codecs(c: &mut Criterion) {
    let ds = catalog::spec("gts_chkp_zion")
        .expect("catalog entry")
        .generate(ELEMENTS, 7);
    let mut group = c.benchmark_group("float_codecs");
    group.throughput(Throughput::Bytes(ds.bytes.len() as u64));
    group.sample_size(10);

    let fpc = Fpc::default();
    group.bench_function("compress/fpc", |b| b.iter(|| fpc.compress(&ds.bytes)));
    let fpc_packed = fpc.compress(&ds.bytes);
    group.bench_function("decompress/fpc", |b| {
        b.iter(|| fpc.decompress(&fpc_packed).expect("own stream"))
    });

    let fpz = FpzipLike;
    let dims = Dims::linear(ELEMENTS);
    group.bench_function("compress/fpzip", |b| {
        b.iter(|| fpz.compress_f64(&ds.bytes, dims).expect("aligned"))
    });
    let fpz_packed = fpz.compress_f64(&ds.bytes, dims).expect("aligned");
    group.bench_function("decompress/fpzip", |b| {
        b.iter(|| fpz.decompress(&fpz_packed).expect("own stream"))
    });
    group.finish();
}

/// Input profiles for the LZ77 matcher, spanning its fast paths:
/// constant data (maximal match lengths), mixed-entropy scientific
/// doubles (the pipeline's real diet), and pure noise (probe misses,
/// where the Fast level's run-skip heuristic pays off).
fn matcher_profiles() -> Vec<(&'static str, Vec<u8>)> {
    const BYTES: usize = 1 << 20;
    let constant = vec![0x5Au8; BYTES];
    let mixed = catalog::spec("gts_chkp_zion")
        .expect("catalog entry")
        .generate(BYTES / 8, 7)
        .bytes;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let noise: Vec<u8> = (0..BYTES)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 56) as u8
        })
        .collect();
    vec![
        ("constant", constant),
        ("mixed_doubles", mixed),
        ("noise", noise),
    ]
}

fn bench_matcher(c: &mut Criterion) {
    let mut group = c.benchmark_group("lz77_matcher");
    group.sample_size(10);
    for (profile, data) in matcher_profiles() {
        group.throughput(Throughput::Bytes(data.len() as u64));
        for level in CompressionLevel::ALL {
            // The scratch persists across iterations, matching how the
            // pipeline drives the matcher chunk after chunk.
            let mut scratch = MatcherScratch::default();
            group.bench_with_input(
                BenchmarkId::new(format!("tokenize/{level}"), profile),
                &data,
                |b, data| b.iter(|| Matcher::new(data, level, &mut scratch).tokenize().len()),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_general_codecs,
    bench_float_codecs,
    bench_matcher
);
criterion_main!(benches);
