//! ISOBAR-partitioner: split elements into compressible and
//! incompressible byte streams (§II.B, Algorithm 1, Fig. 5).
//!
//! Given the analyzer's column selection, the partitioner serializes
//! the compressible columns with the EUPA-chosen linearization (these
//! go to the solver) and the incompressible columns column-wise (these
//! are stored verbatim — their order only needs to be deterministic).
//! `reassemble` inverts the split exactly.

use crate::analyzer::ColumnSelection;
use isobar_linearize::Linearization;
use isobar_simd::transpose::StreamLayout;
use isobar_simd::KernelTier;

/// The kernel crate's layout tag for a linearization choice: the C
/// stream is row- or column-major per EUPA, the I stream always
/// column-major.
fn layout(lin: Linearization) -> StreamLayout {
    match lin {
        Linearization::Row => StreamLayout::RowMajor,
        Linearization::Column => StreamLayout::ColumnMajor,
    }
}

/// Output of partitioning one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioned {
    /// Bytes of the compressible columns, serialized with the chosen
    /// linearization — the solver's input (paper's C).
    pub compressible: Vec<u8>,
    /// Bytes of the incompressible columns, column-wise — stored as-is
    /// (paper's I).
    pub incompressible: Vec<u8>,
}

/// Split `data` (`N × width` bytes) according to `selection`.
///
/// The compressible part uses `lin`; the incompressible part is always
/// column-wise (it is never compressed, and column order keeps the
/// reassembly stride-friendly).
///
/// # Example
///
/// ```
/// use isobar::partitioner::{partition, reassemble};
/// use isobar::{ColumnSelection, Linearization};
///
/// // Two elements of width 3; columns 0 and 2 selected compressible.
/// let data = [10u8, 11, 12, 20, 21, 22];
/// let selection = ColumnSelection::new(vec![true, false, true]);
///
/// let parts = partition(&data, 3, &selection, Linearization::Row);
/// assert_eq!(parts.compressible, vec![10, 12, 20, 22]); // row-wise C
/// assert_eq!(parts.incompressible, vec![11, 21]);       // column-wise I
///
/// let rebuilt = reassemble(&parts, 3, &selection, Linearization::Row);
/// assert_eq!(rebuilt, data);
/// ```
pub fn partition(
    data: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
) -> Partitioned {
    let mut parts = Partitioned {
        compressible: Vec::new(),
        incompressible: Vec::new(),
    };
    partition_into(
        data,
        width,
        selection,
        lin,
        &mut parts.compressible,
        &mut parts.incompressible,
    );
    parts
}

/// [`partition`] into caller-provided buffers (cleared and refilled) —
/// the allocation-free path the compressor's hot loop uses, on the
/// process-wide kernel tier.
pub fn partition_into(
    data: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    compressible: &mut Vec<u8>,
    incompressible: &mut Vec<u8>,
) {
    partition_into_with(
        isobar_simd::active_tier(),
        data,
        width,
        selection,
        lin,
        compressible,
        incompressible,
    );
}

/// [`partition_into`] on an explicit kernel tier — the pipeline resolves
/// its tier once at construction and calls this directly. One fused pass
/// over the source feeds both output streams (SIMD unpack-tree for
/// ω ≤ 8, cache-blocked scalar otherwise).
pub fn partition_into_with(
    tier: KernelTier,
    data: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    compressible: &mut Vec<u8>,
    incompressible: &mut Vec<u8>,
) {
    debug_assert_eq!(selection.width(), width);
    let n = data.len() / width.max(1);
    let comp_cols = selection.compressible();
    let incomp_cols = selection.incompressible();
    compressible.clear();
    compressible.resize(n * comp_cols.len(), 0);
    incompressible.clear();
    incompressible.resize(n * incomp_cols.len(), 0);
    isobar_simd::transpose::partition2(
        tier,
        data,
        width,
        &comp_cols,
        layout(lin),
        compressible,
        &incomp_cols,
        incompressible,
    );
}

/// Inverse of [`partition`]: rebuild the original element bytes.
///
/// # Panics
///
/// Panics if the stream lengths are inconsistent with `width` and
/// `selection` (the container validates lengths before calling this).
pub fn reassemble(
    parts: &Partitioned,
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
) -> Vec<u8> {
    let total = parts.compressible.len() + parts.incompressible.len();
    let mut out = vec![0u8; total];
    reassemble_into(
        &parts.compressible,
        &parts.incompressible,
        width,
        selection,
        lin,
        &mut out,
    );
    out
}

/// [`reassemble`] into a caller-provided buffer (must be exactly
/// `compressible.len() + incompressible.len()` bytes) — the allocation-
/// free path the decompressor's hot loop uses, on the process-wide
/// kernel tier.
pub fn reassemble_into(
    compressible: &[u8],
    incompressible: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    out: &mut [u8],
) {
    reassemble_into_with(
        isobar_simd::active_tier(),
        compressible,
        incompressible,
        width,
        selection,
        lin,
        out,
    );
}

/// [`reassemble_into`] on an explicit kernel tier. C and I together
/// cover every byte-column, which is what lets the SIMD kernel store
/// whole rows (its "unlisted columns are unspecified" contract is
/// vacuous here).
#[allow(clippy::too_many_arguments)]
pub fn reassemble_into_with(
    tier: KernelTier,
    compressible: &[u8],
    incompressible: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    out: &mut [u8],
) {
    assert_eq!(out.len(), compressible.len() + incompressible.len());
    isobar_simd::transpose::reassemble2(
        tier,
        compressible,
        &selection.compressible(),
        layout(lin),
        incompressible,
        &selection.incompressible(),
        width,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;

    fn demo_data(n: usize) -> Vec<u8> {
        // width 4: [constant, uniform, index-low, uniform]
        let mut state = 0xABCDEFu64;
        (0..n)
            .flat_map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [
                    5u8,
                    (state >> 33) as u8,
                    (i % 64) as u8,
                    (state >> 41) as u8,
                ]
            })
            .collect()
    }

    #[test]
    fn partition_splits_by_selection() {
        let data = demo_data(50_000);
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        assert_eq!(sel.bits(), &[true, false, true, false]);
        let parts = partition(&data, 4, &sel, Linearization::Row);
        assert_eq!(parts.compressible.len(), 2 * 50_000);
        assert_eq!(parts.incompressible.len(), 2 * 50_000);
        // Row linearization interleaves columns 0 and 2 per element.
        assert_eq!(parts.compressible[0], 5);
        assert_eq!(parts.compressible[1], 0); // i % 64 at i = 0
        assert_eq!(parts.compressible[3], 1); // i % 64 at i = 1
    }

    #[test]
    fn reassemble_is_exact_for_all_linearizations() {
        let data = demo_data(10_000);
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        for lin in Linearization::ALL {
            let parts = partition(&data, 4, &sel, lin);
            assert_eq!(reassemble(&parts, 4, &sel, lin), data, "{lin}");
        }
    }

    #[test]
    fn all_compressible_selection_degenerates_gracefully() {
        let data = demo_data(1000);
        let sel = crate::analyzer::ColumnSelection::new(vec![true; 4]);
        let parts = partition(&data, 4, &sel, Linearization::Row);
        assert_eq!(parts.compressible, data);
        assert!(parts.incompressible.is_empty());
        assert_eq!(reassemble(&parts, 4, &sel, Linearization::Row), data);
    }

    #[test]
    fn all_incompressible_selection_degenerates_gracefully() {
        let data = demo_data(1000);
        let sel = crate::analyzer::ColumnSelection::new(vec![false; 4]);
        let parts = partition(&data, 4, &sel, Linearization::Column);
        assert!(parts.compressible.is_empty());
        assert_eq!(parts.incompressible.len(), data.len());
        assert_eq!(reassemble(&parts, 4, &sel, Linearization::Column), data);
    }

    #[test]
    fn partition_into_reused_buffers_match_fresh_partition() {
        // Dirty, differently-sized buffers must not leak into results.
        let a = demo_data(10_000);
        let b = demo_data(3_000);
        let sel_a = Analyzer::default().analyze(&a, 4).unwrap();
        let sel_b = Analyzer::default().analyze(&b, 4).unwrap();
        let mut comp = vec![0xAA; 999];
        let mut incomp = vec![0x55; 7];
        for lin in Linearization::ALL {
            for (data, sel) in [(&a, &sel_a), (&b, &sel_b)] {
                partition_into(data, 4, sel, lin, &mut comp, &mut incomp);
                let fresh = partition(data, 4, sel, lin);
                assert_eq!(comp, fresh.compressible, "{lin}");
                assert_eq!(incomp, fresh.incompressible, "{lin}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let sel = crate::analyzer::ColumnSelection::new(vec![true, false]);
        let parts = partition(&[], 2, &sel, Linearization::Row);
        assert!(parts.compressible.is_empty() && parts.incompressible.is_empty());
        assert!(reassemble(&parts, 2, &sel, Linearization::Row).is_empty());
    }

    #[test]
    fn compressible_stream_is_more_compressible_than_original() {
        // The point of the exercise: after removing the noise columns,
        // the solver sees a lower-entropy stream.
        use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate, Codec};
        let data = demo_data(100_000);
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        let parts = partition(&data, 4, &sel, Linearization::Row);
        for codec in [&Deflate::default() as &dyn Codec, &Bzip2Like::default()] {
            let whole = codec.compress(&data).len();
            let precond = codec.compress(&parts.compressible).len() + parts.incompressible.len();
            assert!(
                precond < whole,
                "{}: preconditioned {} vs whole {}",
                codec.name(),
                precond,
                whole
            );
        }
    }
}
