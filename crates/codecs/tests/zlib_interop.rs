//! Interoperability with reference zlib.
//!
//! The decoder must accept streams produced by the canonical zlib
//! library, and the encoder's streams must decode under the RFC
//! 1950/1951 rules. The fixtures below were produced by CPython's
//! `zlib.compress(data, 6)` (which wraps madler/zlib) and are embedded
//! verbatim; `deflate_interop_checked_externally` in this repository's
//! EXPERIMENTS.md records the reverse check (reference zlib inflating
//! our output).

use isobar_codecs::deflate::Deflate;
use isobar_codecs::Codec;

struct Fixture {
    plain: Vec<u8>,
    zlib_stream: &'static [u8],
}

fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            plain: b"hello".to_vec(),
            zlib_stream: &[120, 156, 203, 72, 205, 201, 201, 7, 0, 6, 44, 2, 21],
        },
        Fixture {
            plain: Vec::new(),
            zlib_stream: &[120, 156, 3, 0, 0, 0, 0, 1],
        },
        Fixture {
            plain: vec![b'a'; 40],
            zlib_stream: &[120, 156, 75, 76, 36, 14, 0, 0, 54, 235, 15, 41],
        },
        Fixture {
            plain: b"the quick brown fox jumps over the lazy dog. ".repeat(20),
            zlib_stream: &[
                120, 156, 43, 201, 72, 85, 40, 44, 205, 76, 206, 86, 72, 42, 202, 47, 207, 83, 72,
                203, 175, 80, 200, 42, 205, 45, 40, 86, 200, 47, 75, 45, 82, 40, 1, 74, 231, 36,
                86, 85, 42, 164, 228, 167, 235, 129, 121, 163, 138, 71, 21, 143, 42, 166, 170, 98,
                0, 229, 33, 69, 156,
            ],
        },
        Fixture {
            plain: (0..=255u8).collect::<Vec<u8>>().repeat(3),
            zlib_stream: &[
                120, 156, 99, 96, 100, 98, 102, 97, 101, 99, 231, 224, 228, 226, 230, 225, 229,
                227, 23, 16, 20, 18, 22, 17, 21, 19, 151, 144, 148, 146, 150, 145, 149, 147, 87,
                80, 84, 82, 86, 81, 85, 83, 215, 208, 212, 210, 214, 209, 213, 211, 55, 48, 52, 50,
                54, 49, 53, 51, 183, 176, 180, 178, 182, 177, 181, 179, 119, 112, 116, 114, 118,
                113, 117, 115, 247, 240, 244, 242, 246, 241, 245, 243, 15, 8, 12, 10, 14, 9, 13,
                11, 143, 136, 140, 138, 142, 137, 141, 139, 79, 72, 76, 74, 78, 73, 77, 75, 207,
                200, 204, 202, 206, 201, 205, 203, 47, 40, 44, 42, 46, 41, 45, 43, 175, 168, 172,
                170, 174, 169, 173, 171, 111, 104, 108, 106, 110, 105, 109, 107, 239, 232, 236,
                234, 238, 233, 237, 235, 159, 48, 113, 210, 228, 41, 83, 167, 77, 159, 49, 115,
                214, 236, 57, 115, 231, 205, 95, 176, 112, 209, 226, 37, 75, 151, 45, 95, 177, 114,
                213, 234, 53, 107, 215, 173, 223, 176, 113, 211, 230, 45, 91, 183, 109, 223, 177,
                115, 215, 238, 61, 123, 247, 237, 63, 112, 240, 208, 225, 35, 71, 143, 29, 63, 113,
                242, 212, 233, 51, 103, 207, 157, 191, 112, 241, 210, 229, 43, 87, 175, 93, 191,
                113, 243, 214, 237, 59, 119, 239, 221, 127, 240, 240, 209, 227, 39, 79, 159, 61,
                127, 241, 242, 213, 235, 55, 111, 223, 189, 255, 240, 241, 211, 231, 47, 95, 191,
                125, 255, 241, 243, 215, 239, 63, 127, 255, 253, 103, 24, 245, 255, 136, 246, 63,
                0, 160, 98, 126, 144,
            ],
        },
    ]
}

#[test]
fn decodes_reference_zlib_streams() {
    let codec = Deflate::default();
    for (i, fixture) in fixtures().iter().enumerate() {
        let decoded = codec
            .decompress(fixture.zlib_stream)
            .unwrap_or_else(|e| panic!("fixture {i}: {e}"));
        assert_eq!(decoded, fixture.plain, "fixture {i}");
    }
}

#[test]
fn reference_streams_round_trip_through_our_encoder() {
    // Not byte-identical output (block decisions differ), but our
    // encoder must reproduce the same plaintext through our decoder —
    // and the plaintexts here are the reference corpus.
    let codec = Deflate::default();
    for fixture in fixtures() {
        let ours = codec.compress(&fixture.plain);
        assert_eq!(codec.decompress(&ours).unwrap(), fixture.plain);
    }
}
