//! Serve-side observability: phase-attributed request timing, always-on
//! latency histograms, the flight recorder, and the `/debug/stats`
//! snapshot.
//!
//! Every request the daemon dispatches is timed twice over:
//!
//! * **Phases** — named sections of the request path (accept,
//!   header-parse, admission, payload-read, lock-wait, overlay,
//!   store-put/get, commit, write-response) accumulate nanoseconds into
//!   a per-request [`RequestObs`], and each phase also emits an
//!   `isobar_trace` span so a flight-recorder dump shows the same
//!   decomposition on a timeline. The cumulative per-phase totals are
//!   the scoreboard for de-convoying the store lock (ROADMAP item 1):
//!   `lock_wait` divided by total request time is the convoy share.
//! * **Histograms** — per-op and per-tenant HDR-style
//!   [`LatencyHistogram`]s record every request's wall time, always on,
//!   exported through `/metrics` and `/debug/stats`.
//!
//! The flight recorder keeps the daemon's trace rings warm
//! (`isobar_trace` is activated when a dump directory is configured)
//! and writes Chrome trace dumps on SIGUSR1, on panic, and — rate
//! limited — when a request exceeds the `--slow-ms` threshold. Slow
//! requests additionally append one JSON line each to `slow.jsonl`
//! with their full phase breakdown.

use isobar::telemetry::latency::LatencyHistogram;
use isobar::trace::TraceTag;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

/// Request ops with their own latency histogram, indexed by
/// [`op_index`].
pub const OP_NAMES: [&str; 4] = ["put", "get", "stat", "ls"];

/// Distinct tenants tracked with their own histogram before new ones
/// collapse into the `_other` bucket (bounds `/metrics` cardinality).
pub const MAX_TENANT_HISTOGRAMS: usize = 32;

/// Completed requests kept in the in-memory ring for `/debug/stats`.
pub const RECENT_REQUESTS: usize = 256;

/// Minimum spacing between slow-request flight dumps. The JSONL slow
/// log records *every* slow request; only the (expensive) trace dumps
/// are rate limited.
pub const SLOW_DUMP_INTERVAL_SECS: u64 = 5;

/// Histogram index for a request op.
pub fn op_index(opcode: crate::protocol::Opcode) -> usize {
    match opcode {
        crate::protocol::Opcode::Put => 0,
        crate::protocol::Opcode::Get => 1,
        crate::protocol::Opcode::Stat => 2,
        crate::protocol::Opcode::Ls => 3,
    }
}

/// Stable lowercase name for a response status (slow-log and
/// `/debug/stats` vocabulary).
pub fn status_name(status: crate::protocol::Status) -> &'static str {
    match status {
        crate::protocol::Status::Ok => "ok",
        crate::protocol::Status::Busy => "busy",
        crate::protocol::Status::NotFound => "not_found",
        crate::protocol::Status::BadRequest => "bad_request",
        crate::protocol::Status::ServerError => "server_error",
        crate::protocol::Status::ShuttingDown => "shutting_down",
    }
}

/// One named section of the request path. The discriminant indexes
/// [`RequestObs::phase_nanos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ServePhase {
    /// `accept(2)` returning to the handler thread starting (attributed
    /// to the connection's first request).
    Accept,
    /// Reading and decoding the request header and identifier fields.
    HeaderParse,
    /// The byte-budget admission decision for a put.
    Admission,
    /// Reading a put payload off the socket.
    PayloadRead,
    /// Blocking on the store mutex.
    LockWait,
    /// Read-your-writes overlay lookup or insert.
    Overlay,
    /// Sharded-store put (writer creation + pipeline submit).
    StorePut,
    /// Write-ahead journal append + fsync — the durability barrier a
    /// put's `Ok` waits on.
    WalFsync,
    /// Committed-store get / stat / ls scan.
    StoreGet,
    /// A store generation commit triggered by this request.
    Commit,
    /// Encoding and writing the response frame.
    WriteResponse,
}

impl ServePhase {
    /// Number of phases (array size).
    pub const COUNT: usize = 11;

    /// Every phase, in stable order.
    pub const ALL: [ServePhase; ServePhase::COUNT] = [
        ServePhase::Accept,
        ServePhase::HeaderParse,
        ServePhase::Admission,
        ServePhase::PayloadRead,
        ServePhase::LockWait,
        ServePhase::Overlay,
        ServePhase::StorePut,
        ServePhase::WalFsync,
        ServePhase::StoreGet,
        ServePhase::Commit,
        ServePhase::WriteResponse,
    ];

    /// Stable snake_case name (JSONL keys, Prometheus `phase` label).
    pub fn name(self) -> &'static str {
        match self {
            ServePhase::Accept => "accept",
            ServePhase::HeaderParse => "header_parse",
            ServePhase::Admission => "admission",
            ServePhase::PayloadRead => "payload_read",
            ServePhase::LockWait => "lock_wait",
            ServePhase::Overlay => "overlay",
            ServePhase::StorePut => "store_put",
            ServePhase::WalFsync => "wal_fsync",
            ServePhase::StoreGet => "store_get",
            ServePhase::Commit => "commit",
            ServePhase::WriteResponse => "write_response",
        }
    }

    /// The trace span tag emitted while this phase runs.
    pub fn trace_tag(self) -> TraceTag {
        match self {
            ServePhase::Accept => TraceTag::ServeAccept,
            ServePhase::HeaderParse => TraceTag::ServeHeaderParse,
            ServePhase::Admission => TraceTag::ServeAdmission,
            ServePhase::PayloadRead => TraceTag::ServePayloadRead,
            ServePhase::LockWait => TraceTag::ServeLockWait,
            ServePhase::Overlay => TraceTag::ServeOverlay,
            ServePhase::StorePut => TraceTag::ServeStorePut,
            ServePhase::WalFsync => TraceTag::ServeWalFsync,
            ServePhase::StoreGet => TraceTag::ServeStoreGet,
            ServePhase::Commit => TraceTag::ServeCommit,
            ServePhase::WriteResponse => TraceTag::ServeWriteResponse,
        }
    }
}

/// Per-request phase accumulator, threaded through the handlers like
/// the telemetry `Recorder`.
///
/// Attribution is a *boundary clock*: `mark` is the end of the last
/// attributed stretch, and each phase charges everything from there to
/// its own end. Phases therefore tile the request — inter-phase
/// bookkeeping (dispatch, allocations, the instrumentation itself) is
/// charged to the phase it precedes instead of leaking into an
/// unattributed gap, which is what lets the slow log promise ≥95%
/// attribution even for microsecond-scale requests.
#[derive(Debug)]
pub struct RequestObs {
    /// Nanoseconds attributed to each phase, indexed by
    /// `ServePhase as usize`.
    pub phase_nanos: [u64; ServePhase::COUNT],
    /// Histogram slot ([`op_index`]), or `usize::MAX` before dispatch.
    pub op: usize,
    /// Tenant the request named (empty for the default tenant).
    pub tenant: String,
    /// Final response status name (see [`status_name`]).
    pub status: &'static str,
    /// End of the last attributed stretch.
    mark: Instant,
}

impl Default for RequestObs {
    fn default() -> Self {
        RequestObs {
            phase_nanos: [0; ServePhase::COUNT],
            op: usize::MAX,
            tenant: String::new(),
            status: "ok",
            mark: Instant::now(),
        }
    }
}

impl RequestObs {
    /// Fresh accumulator; the boundary clock starts now, so construct
    /// it at the request's first byte.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add pre-measured time to a phase without touching the boundary
    /// clock (the accept hand-off, measured on the accept thread).
    #[inline]
    pub fn add(&mut self, phase: ServePhase, nanos: u64) {
        self.phase_nanos[phase as usize] = self.phase_nanos[phase as usize].saturating_add(nanos);
    }

    /// Charge everything since the last boundary to `phase` and move
    /// the boundary here.
    #[inline]
    pub fn charge(&mut self, phase: ServePhase) {
        let now = Instant::now();
        self.add(phase, now.duration_since(self.mark).as_nanos() as u64);
        self.mark = now;
    }

    /// Run `f` attributed to `phase`: one trace span, then a boundary
    /// charge. The span brackets `f` tightly for the timeline; the
    /// phase accounting additionally absorbs whatever ran since the
    /// previous boundary.
    #[inline]
    pub fn time<T>(&mut self, phase: ServePhase, f: impl FnOnce() -> T) -> T {
        let out = {
            let _span = isobar::trace::span(phase.trace_tag(), isobar::trace::NO_CHUNK);
            f()
        };
        self.charge(phase);
        out
    }

    /// [`RequestObs::time`] without the trace span, for sections that
    /// already emit their own (the commit path).
    #[inline]
    pub fn time_unspanned<T>(&mut self, phase: ServePhase, f: impl FnOnce() -> T) -> T {
        let out = f();
        self.charge(phase);
        out
    }

    /// Nanoseconds attributed across all phases.
    pub fn attributed_nanos(&self) -> u64 {
        self.phase_nanos.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }
}

/// One completed request, as kept in the recent-request ring and
/// written to the slow log.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Histogram slot of the request op (see [`op_index`]); out of
    /// range renders as `invalid`.
    pub op: usize,
    /// Tenant the request named.
    pub tenant: String,
    /// Response status name.
    pub status: &'static str,
    /// Wall time of the whole request, nanoseconds.
    pub total_nanos: u64,
    /// Per-phase attribution, indexed by `ServePhase as usize`.
    pub phase_nanos: [u64; ServePhase::COUNT],
}

impl RequestRecord {
    /// Op name (`put`/`get`/`stat`/`ls`, or `invalid`).
    pub fn op_name(&self) -> &'static str {
        OP_NAMES.get(self.op).copied().unwrap_or("invalid")
    }

    /// Serialize as one JSON object (one slow-log line, sans newline).
    pub fn to_json(&self) -> String {
        let attributed: u64 = self.phase_nanos.iter().fold(0u64, |a, &b| a.saturating_add(b));
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"op\": \"{}\", \"tenant\": \"{}\", \"status\": \"{}\", \
             \"total_nanos\": {}, \"attributed_nanos\": {}, \"phases\": {{",
            self.op_name(),
            escape_json(&self.tenant),
            self.status,
            self.total_nanos,
            attributed,
        ));
        for (i, phase) in ServePhase::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", phase.name(), self.phase_nanos[i]));
        }
        out.push_str("}}");
        out
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Mutable observability state, one per daemon, behind a mutex taken
/// once per request (the same discipline as the telemetry snapshot
/// merge).
#[derive(Debug, Default)]
pub struct ObsState {
    /// Per-op request-latency histograms, indexed by [`op_index`].
    pub per_op: [LatencyHistogram; 4],
    /// Per-tenant histograms, first-come order, capped at
    /// [`MAX_TENANT_HISTOGRAMS`]; the overflow bucket is named
    /// `_other`.
    pub tenants: Vec<(String, LatencyHistogram)>,
    /// Cumulative per-phase nanoseconds across every request.
    pub phase_nanos: [u64; ServePhase::COUNT],
    /// Cumulative request wall time, nanoseconds.
    pub total_request_nanos: u64,
    /// Requests past the slow threshold.
    pub slow_requests: u64,
    /// Flight-recorder dumps written.
    pub flight_dumps: u64,
    /// Most recent completed requests, oldest first.
    pub recent: VecDeque<RequestRecord>,
    /// Last slow-triggered dump, for rate limiting.
    pub last_slow_dump: Option<Instant>,
}

impl ObsState {
    /// Fold one completed request into the histograms, phase totals,
    /// and recent ring. Returns whether the request was slow (past
    /// `slow_nanos`) and whether a slow-triggered flight dump is due.
    pub fn record_request(
        &mut self,
        record: RequestRecord,
        slow_nanos: Option<u64>,
        dumps_enabled: bool,
    ) -> (bool, bool) {
        if record.op < OP_NAMES.len() {
            self.per_op[record.op].record(record.total_nanos);
        }
        match self.tenants.iter().position(|(t, _)| *t == record.tenant) {
            Some(i) => self.tenants[i].1.record(record.total_nanos),
            None if self.tenants.len() < MAX_TENANT_HISTOGRAMS => {
                let mut hist = LatencyHistogram::new();
                hist.record(record.total_nanos);
                self.tenants.push((record.tenant.clone(), hist));
            }
            None => match self.tenants.iter().position(|(t, _)| t == "_other") {
                Some(i) => self.tenants[i].1.record(record.total_nanos),
                None => {
                    let mut hist = LatencyHistogram::new();
                    hist.record(record.total_nanos);
                    self.tenants.push(("_other".to_string(), hist));
                }
            },
        }
        for (total, &part) in self.phase_nanos.iter_mut().zip(&record.phase_nanos) {
            *total = total.saturating_add(part);
        }
        self.total_request_nanos = self.total_request_nanos.saturating_add(record.total_nanos);
        let slow = slow_nanos.is_some_and(|t| record.total_nanos >= t);
        if self.recent.len() == RECENT_REQUESTS {
            self.recent.pop_front();
        }
        self.recent.push_back(record);
        let mut dump_due = false;
        if slow {
            self.slow_requests += 1;
            if dumps_enabled {
                let due = self
                    .last_slow_dump
                    .is_none_or(|t| t.elapsed().as_secs() >= SLOW_DUMP_INTERVAL_SECS);
                if due {
                    self.last_slow_dump = Some(Instant::now());
                    dump_due = true;
                }
            }
        }
        (slow, dump_due)
    }

    /// Append the observability metric families to a Prometheus
    /// exposition body: per-op and per-tenant request-duration
    /// histograms plus the cumulative per-phase seconds counters.
    pub fn render_prometheus(&self, out: &mut String) {
        out.push_str(
            "# HELP isobar_serve_request_duration_seconds Request wall time by op.\n\
             # TYPE isobar_serve_request_duration_seconds histogram\n",
        );
        for (op, hist) in OP_NAMES.iter().zip(&self.per_op) {
            hist.render_prometheus(
                out,
                "isobar_serve_request_duration_seconds",
                &format!("op=\"{op}\""),
            );
        }
        if !self.tenants.is_empty() {
            out.push_str(
                "# HELP isobar_serve_tenant_request_duration_seconds Request wall time by tenant.\n\
                 # TYPE isobar_serve_tenant_request_duration_seconds histogram\n",
            );
            for (tenant, hist) in &self.tenants {
                hist.render_prometheus(
                    out,
                    "isobar_serve_tenant_request_duration_seconds",
                    &format!("tenant=\"{}\"", escape_json(tenant)),
                );
            }
        }
        out.push_str(
            "# HELP isobar_serve_phase_seconds_total Cumulative request time by phase.\n\
             # TYPE isobar_serve_phase_seconds_total counter\n",
        );
        for phase in ServePhase::ALL {
            out.push_str(&format!(
                "isobar_serve_phase_seconds_total{{phase=\"{}\"}} {:.9}\n",
                phase.name(),
                self.phase_nanos[phase as usize] as f64 / 1e9,
            ));
        }
    }

    /// Append the observability half of the `/debug/stats` JSON object:
    /// totals, phase breakdown, per-op and per-tenant histogram
    /// summaries, and the recent-request ring. Emits `"key": value`
    /// pairs without surrounding braces so the daemon can splice in its
    /// own fields (connections, overlay, backlog).
    pub fn write_debug_json(&self, out: &mut String) {
        out.push_str(&format!(
            "\"total_request_nanos\": {}, \"slow_requests\": {}, \"flight_dumps\": {}",
            self.total_request_nanos, self.slow_requests, self.flight_dumps
        ));
        out.push_str(", \"lock_wait_nanos\": ");
        out.push_str(&self.phase_nanos[ServePhase::LockWait as usize].to_string());
        out.push_str(", \"phases\": {");
        for (i, phase) in ServePhase::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {}",
                phase.name(),
                self.phase_nanos[i]
            ));
        }
        out.push_str("}, \"ops\": {");
        for (i, (op, hist)) in OP_NAMES.iter().zip(&self.per_op).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{op}\": "));
            hist.write_json(out);
        }
        out.push_str("}, \"tenants\": {");
        for (i, (tenant, hist)) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": ", escape_json(tenant)));
            hist.write_json(out);
        }
        out.push_str("}, \"recent_requests\": [");
        for (i, rec) in self.recent.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&rec.to_json());
        }
        out.push(']');
    }
}

static PANIC_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static PANIC_HOOK: Once = Once::new();

/// Dump the flight recorder when any thread panics, chaining to the
/// previous hook (so the default backtrace still prints). The dump
/// directory is process-global and follows the most recent daemon;
/// installing is idempotent.
pub fn install_panic_dump(dir: &Path) {
    *PANIC_DIR.lock().unwrap_or_else(|e| e.into_inner()) = Some(dir.to_path_buf());
    PANIC_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let dir = PANIC_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone();
            if let Some(dir) = dir {
                let _ = dump_flight_trace(&dir, "panic");
            }
            previous(info);
        }));
    });
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write the current contents of the trace rings as a Chrome trace
/// file `flight-<reason>-<seq>.trace.json` under `dir`. The calling
/// thread's ring is flushed first, so a slow request dumping from its
/// own handler thread always includes its own spans. Draining resets
/// the rings — each dump carries the window since the previous one.
pub fn dump_flight_trace(dir: &Path, reason: &str) -> std::io::Result<PathBuf> {
    isobar::trace::flush_thread();
    let trace = isobar::trace::drain();
    let json = trace.to_chrome_json();
    std::fs::create_dir_all(dir)?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("flight-{reason}-{seq}.trace.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Append one record to the slow-request log (`slow.jsonl` under the
/// flight-recorder directory). Creates the file on first use. The
/// mutex serializes appends across handler threads.
#[derive(Debug, Default)]
pub struct SlowLog {
    file: Mutex<Option<std::fs::File>>,
}

impl SlowLog {
    /// Append `record` as one JSON line under `dir`.
    pub fn append(&self, dir: &Path, record: &RequestRecord) {
        let mut guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            let _ = std::fs::create_dir_all(dir);
            *guard = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("slow.jsonl"))
                .ok();
        }
        if let Some(file) = guard.as_mut() {
            let mut line = record.to_json();
            line.push('\n');
            let _ = file.write_all(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tables_are_consistent() {
        for (i, p) in ServePhase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{}", p.name());
        }
        let mut names: Vec<&str> = ServePhase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ServePhase::COUNT);
    }

    #[test]
    fn request_record_json_carries_every_phase() {
        let mut rec = RequestRecord {
            op: 0,
            tenant: "acme \"lab\"".into(),
            status: "ok",
            total_nanos: 1000,
            phase_nanos: [0; ServePhase::COUNT],
        };
        rec.phase_nanos[ServePhase::LockWait as usize] = 400;
        let json = rec.to_json();
        assert!(json.contains("\"lock_wait\": 400"), "{json}");
        assert!(json.contains("\"attributed_nanos\": 400"), "{json}");
        assert!(json.contains("\\\"lab\\\""), "quotes escaped: {json}");
        for phase in ServePhase::ALL {
            assert!(json.contains(phase.name()), "{}", phase.name());
        }
    }

    #[test]
    fn tenant_histograms_cap_with_other_bucket() {
        let mut state = ObsState::default();
        for i in 0..MAX_TENANT_HISTOGRAMS + 10 {
            let record = RequestRecord {
                op: 1,
                tenant: format!("tenant-{i}"),
                status: "ok",
                total_nanos: 1_000,
                phase_nanos: [0; ServePhase::COUNT],
            };
            state.record_request(record, None, false);
        }
        assert_eq!(state.tenants.len(), MAX_TENANT_HISTOGRAMS + 1);
        let other = state.tenants.iter().find(|(t, _)| t == "_other").unwrap();
        assert_eq!(other.1.count(), 10);
    }

    #[test]
    fn slow_threshold_counts_and_rate_limits_dumps() {
        let mut state = ObsState::default();
        let record = |nanos| RequestRecord {
            op: 0,
            tenant: String::new(),
            status: "ok",
            total_nanos: nanos,
            phase_nanos: [0; ServePhase::COUNT],
        };
        // Below the threshold: not slow.
        let (slow, dump) = state.record_request(record(10), Some(100), true);
        assert!(!slow && !dump);
        // At the threshold: slow, and the first dump fires.
        let (slow, dump) = state.record_request(record(100), Some(100), true);
        assert!(slow && dump);
        // Immediately after: slow again, but the dump is rate limited.
        let (slow, dump) = state.record_request(record(200), Some(100), true);
        assert!(slow && !dump);
        assert_eq!(state.slow_requests, 2);
        // No threshold, nothing is slow.
        let (slow, _) = state.record_request(record(u64::MAX), None, true);
        assert!(!slow);
    }

    #[test]
    fn recent_ring_is_bounded() {
        let mut state = ObsState::default();
        for i in 0..RECENT_REQUESTS + 50 {
            let rec = RequestRecord {
                op: 0,
                tenant: String::new(),
                status: "ok",
                total_nanos: i as u64,
                phase_nanos: [0; ServePhase::COUNT],
            };
            state.record_request(rec, None, false);
        }
        assert_eq!(state.recent.len(), RECENT_REQUESTS);
        // Oldest entries were evicted.
        assert_eq!(state.recent.front().unwrap().total_nanos, 50);
    }
}
