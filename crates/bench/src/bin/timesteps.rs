//! §III.F — consistent improvement over an entire simulation run.
//!
//! Compresses many GTS time-step snapshots (linear and nonlinear
//! potential fluctuation) and reports the mean and standard deviation
//! of ΔCR and Sp, plus whether the EUPA decision stayed constant.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{deflate::Deflate, Codec};
use isobar_datasets::catalog;

const STEPS: usize = 20;

fn stats(xs: &[f64]) -> (f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

fn main() {
    banner("Section III.F: consistency across simulation time steps");
    for name in ["gts_phi_l", "gts_phi_nl"] {
        let spec = catalog::spec(name).expect("catalog entry");
        let n = spec.scaled_elements(scale());
        let zlib = Deflate::default();

        let mut delta_crs = Vec::with_capacity(STEPS);
        let mut speedups = Vec::with_capacity(STEPS);
        let mut decisions = std::collections::HashSet::new();
        let mut improvable_steps = 0usize;

        for step in 0..STEPS {
            let ds = spec.generate(n, SEED.wrapping_add(step as u64));
            let (packed, zlib_secs) = time(|| zlib.compress(&ds.bytes));
            let zlib_cr = ds.bytes.len() as f64 / packed.len() as f64;
            let zlib_mbps = mbps(ds.bytes.len(), zlib_secs);

            let run = run_isobar(&ds.bytes, ds.width(), Preference::Speed);
            delta_crs.push(delta_cr_pct(run.ratio, zlib_cr));
            speedups.push(speedup(run.comp_mbps, zlib_mbps));
            decisions.insert((run.report.codec, run.report.linearization));
            improvable_steps += run.report.improvable() as usize;
        }

        let (dcr_mean, dcr_std) = stats(&delta_crs);
        let (sp_mean, sp_std) = stats(&speedups);
        println!("{name}: {STEPS} time steps of {n} doubles");
        println!("  ΔCR: mean {dcr_mean:.2}% stddev {dcr_std:.2}%");
        println!("  Sp : mean {sp_mean:.3} stddev {sp_std:.3}");
        println!(
            "  EUPA decision constant across steps: {} ({:?})",
            decisions.len() == 1,
            decisions
        );
        println!("  improvable on {improvable_steps}/{STEPS} steps");
        println!();
    }
    println!("paper: linear regime ΔCR 14.4% ± 1.8, Sp 5.95 ± 0.07; nonlinear ΔCR");
    println!("13.4% ± 2.7, Sp 3.75 ± 0.05; one EUPA decision for the whole run.");
}
