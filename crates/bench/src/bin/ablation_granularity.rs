//! Ablation — analysis granularity: byte-level vs bit-level (§II.A).
//!
//! The paper picks byte-level analysis for accuracy and speed. This
//! ablation measures both claims on the catalog (classification
//! agreement with the paper's ground truth, and analyzer throughput),
//! plus the structural counterexample where bit marginals are blind.

use isobar::bit_analyzer::BitAnalyzer;
use isobar::Analyzer;
use isobar_bench::*;
use isobar_datasets::catalog;

fn main() {
    banner("Ablation: byte-level vs bit-level analysis granularity");
    let byte_analyzer = Analyzer::default();
    let bit_analyzer = BitAnalyzer::default();

    println!(
        "{:<15} {:>12} {:>12} {:>12} {:>12}",
        "Dataset", "byte HTC%", "bit HTC%", "byte MB/s", "bit MB/s"
    );
    let mut byte_correct = 0usize;
    let mut bit_correct = 0usize;
    let mut byte_mbps = 0.0;
    let mut bit_mbps = 0.0;
    let specs = catalog::all();
    for spec in &specs {
        let ds = generate(spec);
        let (byte_sel, byte_secs) = time(|| {
            byte_analyzer
                .analyze(&ds.bytes, ds.width())
                .expect("aligned")
        });
        let (bit_sel, bit_secs) = time(|| {
            bit_analyzer
                .analyze(&ds.bytes, ds.width())
                .expect("aligned")
        });
        byte_correct += (byte_sel.htc_pct() == spec.paper_htc_pct) as usize;
        bit_correct += (bit_sel.htc_pct() == spec.paper_htc_pct) as usize;
        byte_mbps += mbps(ds.bytes.len(), byte_secs);
        bit_mbps += mbps(ds.bytes.len(), bit_secs);
        println!(
            "{:<15} {:>12.1} {:>12.1} {:>12.0} {:>12.0}",
            spec.name,
            byte_sel.htc_pct(),
            bit_sel.htc_pct(),
            mbps(ds.bytes.len(), byte_secs),
            mbps(ds.bytes.len(), bit_secs),
        );
    }
    println!();
    println!(
        "classification agreement with paper: byte {}/{} vs bit {}/{}",
        byte_correct,
        specs.len(),
        bit_correct,
        specs.len()
    );
    println!(
        "mean analysis throughput: byte {:.0} MB/s vs bit {:.0} MB/s",
        byte_mbps / specs.len() as f64,
        bit_mbps / specs.len() as f64
    );
    println!();
    println!("structural blind spot (see bit_analyzer tests): a column that");
    println!("alternates between complementary byte values has 1 bit of entropy");
    println!("per byte, yet every bit marginal is 0.5 — bit-level analysis calls");
    println!("it noise, byte-level analysis correctly keeps it for the solver.");
}
