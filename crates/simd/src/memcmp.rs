//! Wide common-prefix compare: the DEFLATE matcher's inner loop.
//!
//! `longest_match` spends most of its time measuring how far two
//! window positions agree. The scalar oracle compares 8 bytes per step
//! (u64 XOR + trailing zeros); the SSE2 tier compares 16 bytes per step
//! (`pcmpeqb` + `pmovmskb`), AVX2 32 bytes (`vpcmpeqb` +
//! `vpmovmskb`). All tiers return the exact byte index of the first
//! mismatch, identical to a byte-at-a-time scan.

use crate::KernelTier;

/// Length of the common prefix of `a` and `b`, up to the shorter
/// length. The caller caps the slices at its `max_len`.
#[inline]
pub fn common_prefix(tier: KernelTier, a: &[u8], b: &[u8]) -> usize {
    let len = a.len().min(b.len());
    #[cfg(target_arch = "x86_64")]
    {
        match tier {
            KernelTier::Avx2 if len >= 32 => {
                // SAFETY: AVX2 support is what this tier asserts.
                return unsafe { avx2(a, b, len) };
            }
            KernelTier::Sse2 | KernelTier::Avx2 if len >= 16 => {
                // SAFETY: SSE2 is part of the x86-64 baseline.
                return unsafe { sse2(a, b, len, 0) };
            }
            _ => {}
        }
    }
    let _ = tier;
    scalar(a, b, len, 0)
}

/// The oracle: 8 bytes per step, then bytewise.
fn scalar(a: &[u8], b: &[u8], len: usize, mut i: usize) -> usize {
    while i + 8 <= len {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return i + (diff.trailing_zeros() >> 3) as usize;
        }
        i += 8;
    }
    while i < len && a[i] == b[i] {
        i += 1;
    }
    i
}

/// # Safety
///
/// `i + 16 <= len <= min(a.len(), b.len())` whenever the wide loop
/// runs; SSE2 is baseline on x86-64.
#[cfg(target_arch = "x86_64")]
unsafe fn sse2(a: &[u8], b: &[u8], len: usize, mut i: usize) -> usize {
    use std::arch::x86_64::*;
    while i + 16 <= len {
        // SAFETY: i + 16 <= len bounds both loads.
        let mask = unsafe {
            let x = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let y = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
            _mm_movemask_epi8(_mm_cmpeq_epi8(x, y)) as u32
        };
        if mask != 0xFFFF {
            // First zero bit of the (16-bit) equality mask = first
            // mismatching byte; the inverted high bits are all ones
            // past a guaranteed mismatch, so they never win.
            return i + (!mask).trailing_zeros() as usize;
        }
        i += 16;
    }
    scalar(a, b, len, i)
}

/// # Safety
///
/// Caller guarantees the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2(a: &[u8], b: &[u8], len: usize) -> usize {
    use std::arch::x86_64::*;
    let mut i = 0usize;
    while i + 32 <= len {
        // SAFETY: i + 32 <= len bounds both loads.
        let mask = unsafe {
            let x = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let y = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y)) as u32
        };
        if mask != u32::MAX {
            return i + (!mask).trailing_zeros() as usize;
        }
        i += 32;
    }
    // SAFETY: same bounds contract, continuing at offset i.
    unsafe { sse2(a, b, len, i) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testable_tiers;

    fn naive(a: &[u8], b: &[u8]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    #[test]
    fn matches_naive_on_constructed_mismatches() {
        // A mismatch planted at every offset around the 8/16/32-byte
        // boundaries, for every tier.
        let base: Vec<u8> = (0..200u8).collect();
        for tier in testable_tiers() {
            for at in 0..base.len() {
                let mut other = base.clone();
                other[at] ^= 0x80;
                assert_eq!(
                    common_prefix(tier, &base, &other),
                    at,
                    "{tier} mismatch at {at}"
                );
            }
            assert_eq!(common_prefix(tier, &base, &base.clone()), base.len());
        }
    }

    #[test]
    fn respects_caller_caps_and_empty_slices() {
        let data = vec![9u8; 300];
        for tier in testable_tiers() {
            assert_eq!(common_prefix(tier, &data[..50], &data[..300]), 50);
            assert_eq!(common_prefix(tier, &[], &data), 0);
            assert_eq!(common_prefix(tier, &data[..1], &data[..1]), 1);
        }
    }

    #[test]
    fn random_pairs_agree_with_naive() {
        let mut state = 0xFEED_F00D_u64;
        let mut byte = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 58) as u8 // tiny alphabet: long shared prefixes
        };
        for _ in 0..200 {
            let len = 1 + (byte() as usize * 3) % 250;
            let a: Vec<u8> = (0..len).map(|_| byte()).collect();
            let b: Vec<u8> = (0..len).map(|_| byte()).collect();
            let want = naive(&a, &b);
            for tier in testable_tiers() {
                assert_eq!(common_prefix(tier, &a, &b), want, "{tier}");
            }
        }
    }
}
