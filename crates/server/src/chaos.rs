//! Network fault injection for the serve protocol: a [`ChaosStream`]
//! wraps a live [`TcpStream`] and injects delays, short reads, short
//! writes, stalls, and mid-frame connection resets into every I/O
//! operation, driven by a deterministic xorshift generator.
//!
//! This is the network-side twin of the crash-injection filesystem:
//! the soak harness splices it under an ordinary [`crate::Client`] to
//! prove the daemon survives hostile transports (frame deadlines,
//! bounded drains) and that the [`crate::RetryClient`] turns the
//! resulting carnage back into exactly-once-observable puts.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Fault probabilities (per mille, i.e. rolled against 1000 on every
/// I/O operation) and magnitudes for one [`ChaosStream`].
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the per-stream deterministic RNG.
    pub seed: u64,
    /// Chance of sleeping before an operation.
    pub delay_per_mille: u16,
    /// Longest injected delay, milliseconds (uniform in `1..=max`).
    pub delay_max_ms: u64,
    /// Chance of truncating a read to 1 byte (the peer must cope with
    /// arbitrarily fragmented frames).
    pub short_read_per_mille: u16,
    /// Chance of truncating a write to 1 byte.
    pub short_write_per_mille: u16,
    /// Chance of a hard connection reset (`shutdown(Both)` plus a
    /// `ConnectionReset` error; the stream stays dead afterwards).
    pub reset_per_mille: u16,
    /// Chance of a long stall before an operation (a mini-slowloris).
    pub stall_per_mille: u16,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// A mix that exercises every fault without drowning the run:
    /// frequent fragmentation, occasional delays, rare resets and
    /// stalls.
    pub fn standard(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_per_mille: 30,
            delay_max_ms: 3,
            short_read_per_mille: 200,
            short_write_per_mille: 200,
            reset_per_mille: 4,
            stall_per_mille: 2,
            stall_ms: 50,
        }
    }

    /// No faults at all (a transparent wrapper), useful as a control.
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_per_mille: 0,
            delay_max_ms: 0,
            short_read_per_mille: 0,
            short_write_per_mille: 0,
            reset_per_mille: 0,
            stall_per_mille: 0,
            stall_ms: 0,
        }
    }
}

/// Counts of injected faults, for asserting a chaos run actually
/// exercised something.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChaosStats {
    /// Injected pre-operation delays.
    pub delays: u64,
    /// Reads truncated to one byte.
    pub short_reads: u64,
    /// Writes truncated to one byte.
    pub short_writes: u64,
    /// Hard connection resets.
    pub resets: u64,
    /// Injected stalls.
    pub stalls: u64,
}

impl ChaosStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.delays + self.short_reads + self.short_writes + self.resets + self.stalls
    }
}

/// Scramble a seed into a non-zero xorshift state (splitmix64
/// finalizer), so adjacent seeds — client ids, usually — produce
/// unrelated fault schedules.
pub(crate) fn seed_state(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

/// A [`TcpStream`] with deterministic fault injection on every read
/// and write. Once a reset fires the stream is dead: every later
/// operation returns `ConnectionReset`, like a real broken socket.
pub struct ChaosStream {
    inner: TcpStream,
    cfg: ChaosConfig,
    rng: u64,
    dead: bool,
    /// What this stream has injected so far.
    pub stats: ChaosStats,
}

impl ChaosStream {
    /// Wrap a connected stream.
    pub fn new(inner: TcpStream, cfg: ChaosConfig) -> ChaosStream {
        ChaosStream {
            inner,
            rng: seed_state(cfg.seed),
            cfg,
            dead: false,
            stats: ChaosStats::default(),
        }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — cheap, deterministic, good enough for fault
        // scheduling.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next() % 1000 < u64::from(per_mille)
    }

    /// Run the pre-operation fault schedule. Returns an error when the
    /// operation must fail (reset).
    fn pre_op(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection previously reset",
            ));
        }
        if self.roll(self.cfg.reset_per_mille) {
            self.stats.resets += 1;
            self.dead = true;
            let _ = self.inner.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: injected connection reset",
            ));
        }
        if self.roll(self.cfg.stall_per_mille) {
            self.stats.stalls += 1;
            std::thread::sleep(Duration::from_millis(self.cfg.stall_ms));
        }
        if self.roll(self.cfg.delay_per_mille) {
            self.stats.delays += 1;
            let ms = 1 + self.next() % self.cfg.delay_max_ms.max(1);
            std::thread::sleep(Duration::from_millis(ms));
        }
        Ok(())
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.pre_op()?;
        if buf.len() > 1 && self.roll(self.cfg.short_read_per_mille) {
            self.stats.short_reads += 1;
            return self.inner.read(&mut buf[..1]);
        }
        self.inner.read(buf)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pre_op()?;
        if buf.len() > 1 && self.roll(self.cfg.short_write_per_mille) {
            self.stats.short_writes += 1;
            return self.inner.write(&buf[..1]);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection previously reset",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn quiet_config_is_transparent() {
        let (a, mut b) = pair();
        let mut chaos = ChaosStream::new(a, ChaosConfig::quiet(7));
        chaos.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(chaos.stats.total(), 0);
    }

    #[test]
    fn short_writes_fragment_but_preserve_bytes() {
        let (a, mut b) = pair();
        let mut chaos = ChaosStream::new(
            a,
            ChaosConfig {
                short_write_per_mille: 1000,
                ..ChaosConfig::quiet(3)
            },
        );
        chaos.write_all(b"fragmented").unwrap();
        let mut buf = [0u8; 10];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"fragmented");
        assert!(chaos.stats.short_writes > 0);
    }

    #[test]
    fn reset_kills_the_stream_permanently() {
        let (a, _b) = pair();
        let mut chaos = ChaosStream::new(
            a,
            ChaosConfig {
                reset_per_mille: 1000,
                ..ChaosConfig::quiet(5)
            },
        );
        let err = chaos.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = chaos.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(chaos.stats.resets, 1, "dead stream injects no more");
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let mk = |seed| {
            let (a, _b) = pair();
            let mut chaos = ChaosStream::new(a, ChaosConfig::standard(seed));
            let rolls: Vec<u64> = (0..64).map(|_| chaos.next() % 1000).collect();
            rolls
        };
        assert_eq!(mk(42), mk(42));
        assert_ne!(mk(42), mk(43));
    }
}
