//! LZ77 match finding with hash chains and lazy evaluation.
//!
//! This is the front half of the DEFLATE solver: it turns a byte stream
//! into a sequence of literals and back-references within a 32 KiB
//! window, using the same data structures as zlib (a head table indexed
//! by a 3-byte hash plus a prev-chain threaded through the window) and
//! the same lazy-matching heuristic (defer emitting a match by one
//! position if the next position matches longer).

use crate::codec::CompressionLevel;

/// DEFLATE window size: matches may reach back this far.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum back-reference length (shorter matches cost more than literals).
pub const MIN_MATCH: usize = 3;
/// Maximum back-reference length representable in DEFLATE.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance in `1..=WINDOW_SIZE`.
        dist: u16,
    },
}

/// Tuning knobs derived from [`CompressionLevel`], mirroring zlib's
/// per-level configuration table.
#[derive(Debug, Clone, Copy)]
struct MatcherParams {
    /// Upper bound on hash-chain links followed per position.
    max_chain: usize,
    /// Stop searching early once a match of this length is found.
    nice_len: usize,
    /// Only attempt lazy matching when the current match is shorter.
    lazy_threshold: usize,
    /// Enable lazy (one-step deferred) matching at all.
    lazy: bool,
}

impl MatcherParams {
    fn for_level(level: CompressionLevel) -> Self {
        // Chain depths are tuned for ISOBAR's workload: preconditioned
        // scientific byte streams have tiny effective alphabets, so
        // 3-byte grams collide heavily and deep chains burn time for
        // almost no ratio (measured: chain 128 was 5× slower than
        // chain 8 on gts-like columns for < 1% size difference).
        match level {
            CompressionLevel::Fast => MatcherParams {
                max_chain: 8,
                nice_len: 32,
                lazy_threshold: 0,
                lazy: false,
            },
            CompressionLevel::Default => MatcherParams {
                max_chain: 32,
                nice_len: 64,
                lazy_threshold: 16,
                lazy: true,
            },
            CompressionLevel::Best => MatcherParams {
                max_chain: 256,
                nice_len: MAX_MATCH,
                lazy_threshold: MAX_MATCH,
                lazy: true,
            },
        }
    }
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    // Multiplicative hash of the next three bytes; constants chosen for
    // good dispersion of low-entropy scientific bytes.
    let v = u32::from(data[pos]) | u32::from(data[pos + 1]) << 8 | u32::from(data[pos + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain match finder over a complete input buffer.
///
/// ISOBAR feeds each chunk's compressible bytes to the solver as one
/// buffer, so an in-memory (non-streaming) matcher fits the workload and
/// keeps indexing simple.
pub struct Matcher<'a> {
    data: &'a [u8],
    head: Vec<i32>,
    prev: Vec<i32>,
    params: MatcherParams,
}

impl<'a> Matcher<'a> {
    /// Create a matcher for `data` at the given effort level.
    pub fn new(data: &'a [u8], level: CompressionLevel) -> Self {
        Matcher {
            data,
            head: vec![-1; HASH_SIZE],
            prev: vec![-1; data.len()],
            params: MatcherParams::for_level(level),
        }
    }

    #[inline]
    fn insert(&mut self, pos: usize) {
        if pos + MIN_MATCH <= self.data.len() {
            let h = hash3(self.data, pos);
            self.prev[pos] = self.head[h];
            self.head[h] = pos as i32;
        }
    }

    /// Find the longest match at `pos`, returning `(len, dist)` or
    /// `None` when no match of at least [`MIN_MATCH`] exists.
    fn longest_match(&self, pos: usize) -> Option<(usize, usize)> {
        let data = self.data;
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = (data.len() - pos).min(MAX_MATCH);
        let window_start = pos.saturating_sub(WINDOW_SIZE);
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut candidate = self.head[hash3(data, pos)];
        let mut chain_left = self.params.max_chain;

        while candidate >= 0 && chain_left > 0 {
            let cand = candidate as usize;
            if cand < window_start {
                break;
            }
            debug_assert!(cand < pos);
            // Check the byte just past the current best first: cheapest
            // way to reject chains that cannot improve on it.
            if best_len < max_len
                && data[cand + best_len] == data[pos + best_len]
                && data[cand] == data[pos]
            {
                let len = common_prefix(data, cand, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len >= self.params.nice_len {
                        break;
                    }
                }
            }
            candidate = self.prev[cand];
            chain_left -= 1;
        }

        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }

    /// Tokenize the whole buffer.
    pub fn tokenize(mut self) -> Vec<Token> {
        let data = self.data;
        let mut tokens = Vec::with_capacity(data.len() / 4 + 16);
        let mut pos = 0usize;
        while pos < data.len() {
            let here = self.longest_match(pos);
            match here {
                None => {
                    tokens.push(Token::Literal(data[pos]));
                    self.insert(pos);
                    pos += 1;
                }
                Some((len, dist)) => {
                    // Lazy matching: if the next position holds a longer
                    // match, emit this byte as a literal and defer.
                    let defer = if self.params.lazy && len <= self.params.lazy_threshold {
                        self.insert(pos);
                        let next = self.longest_match(pos + 1);
                        matches!(next, Some((next_len, _)) if next_len > len)
                    } else {
                        false
                    };
                    if defer {
                        tokens.push(Token::Literal(data[pos]));
                        pos += 1; // position already inserted above
                        continue;
                    }
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    // Index every covered position so later matches can
                    // reach into this span. Skip pos itself if the lazy
                    // probe already inserted it.
                    let start = if self.params.lazy && len <= self.params.lazy_threshold {
                        pos + 1
                    } else {
                        pos
                    };
                    for p in start..pos + len {
                        self.insert(p);
                    }
                    pos += len;
                }
            }
        }
        tokens
    }
}

#[inline]
fn common_prefix(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    let lhs = &data[a..a + max_len];
    let rhs = &data[b..b + max_len];
    lhs.iter().zip(rhs).take_while(|(x, y)| x == y).count()
}

/// Reconstruct the original bytes from a token stream (the LZ77 half of
/// the decoder; used directly by tests and indirectly via inflate).
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                // Overlapping copies are semantically byte-at-a-time.
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], level: CompressionLevel) -> Vec<Token> {
        let tokens = Matcher::new(data, level).tokenize();
        assert_eq!(detokenize(&tokens), data, "level {level:?}");
        tokens
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for level in CompressionLevel::ALL {
            assert!(round_trip(b"", level).is_empty());
            round_trip(b"a", level);
            round_trip(b"ab", level);
            round_trip(b"abc", level);
        }
    }

    #[test]
    fn repeated_data_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc";
        let tokens = round_trip(data, CompressionLevel::Default);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match in {tokens:?}"
        );
        // The dominant match should have distance 3.
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 3, .. })));
    }

    #[test]
    fn run_of_identical_bytes_uses_distance_one() {
        let data = vec![0x42u8; 1000];
        let tokens = round_trip(&data, CompressionLevel::Default);
        // RLE via LZ77: literal + dist-1 matches.
        assert!(tokens.len() < 20, "got {} tokens", tokens.len());
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 1, .. })));
    }

    #[test]
    fn incompressible_data_is_all_literals_but_round_trips() {
        // A linear-congruential byte stream with no 3-byte repeats in
        // range produces few or no matches; correctness is what matters.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        for level in CompressionLevel::ALL {
            round_trip(&data, level);
        }
    }

    #[test]
    fn matches_never_exceed_format_limits() {
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.extend_from_slice(&(i % 7).to_le_bytes());
        }
        for level in CompressionLevel::ALL {
            let tokens = round_trip(&data, level);
            for t in &tokens {
                if let Token::Match { len, dist } = t {
                    assert!((*len as usize) >= MIN_MATCH && (*len as usize) <= MAX_MATCH);
                    assert!((*dist as usize) >= 1 && (*dist as usize) <= WINDOW_SIZE);
                }
            }
        }
    }

    #[test]
    fn long_range_matches_stay_inside_window() {
        // Repeat a block at a distance beyond the window: the matcher
        // must not reference it.
        let block: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let mut data = block.clone();
        data.extend(std::iter::repeat_n(0xAA, WINDOW_SIZE + 500));
        data.extend_from_slice(&block);
        round_trip(&data, CompressionLevel::Best);
    }

    #[test]
    fn lazy_matching_improves_or_equals_greedy_token_count() {
        // Classic lazy-match case: "abc" then "bcd..." where deferring
        // one literal yields a longer match.
        let data = b"xabcy_abcde_bcdef_abcdef_bcdefg".repeat(64);
        let fast = Matcher::new(&data, CompressionLevel::Fast).tokenize();
        let best = Matcher::new(&data, CompressionLevel::Best).tokenize();
        assert_eq!(detokenize(&fast), data.as_slice());
        assert_eq!(detokenize(&best), data.as_slice());
        assert!(best.len() <= fast.len());
    }

    #[test]
    fn overlapping_copy_semantics() {
        let tokens = vec![
            Token::Literal(b'a'),
            Token::Literal(b'b'),
            Token::Match { len: 6, dist: 2 },
        ];
        assert_eq!(detokenize(&tokens), b"abababab");
    }
}
