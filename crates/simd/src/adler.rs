//! Adler-32 folding kernel (RFC 1950 §8.2) for the container and zlib
//! integrity checks.
//!
//! The recurrence `a += byte; b += a` is carried exactly, deferring the
//! modulo to every [`NMAX`] bytes (the largest span whose worst-case
//! running sums still fit in `u32`). The AVX2 tier vectorizes a window
//! with the classic split: per 32-byte block, `b` gains `32·a` (one
//! shift-add of the running byte-sum vector) plus a position-weighted
//! byte sum (`maddubs` against weights 32..1), while `a` gains the
//! plain byte sum (`sad` against zero). All intermediate sums stay
//! below 2³² by the NMAX bound, so the result is bit-identical to the
//! scalar recurrence. SSE2 lacks `maddubs`, so that tier uses the
//! scalar path — LLVM already auto-vectorizes it to ~2.6 GB/s.

use crate::KernelTier;

/// Adler-32 modulus: the largest prime below 2^16.
pub const MOD: u32 = 65_521;
/// Largest n such that 255·n·(n+1)/2 + (n+1)·(MOD−1) < 2^32, per zlib.
pub const NMAX: usize = 5552;

/// Fold `data` into the running Adler-32 state `(a, b)`; both inputs
/// must already be reduced modulo [`MOD`], and the returned pair is.
pub fn fold(tier: KernelTier, a: u32, b: u32, data: &[u8]) -> (u32, u32) {
    debug_assert!(a < MOD && b < MOD);
    #[cfg(target_arch = "x86_64")]
    if matches!(tier, KernelTier::Avx2) {
        // SAFETY: the Avx2 tier is only ever selected after
        // `is_x86_feature_detected!("avx2")` succeeded.
        return unsafe { x86::fold_avx2(a, b, data) };
    }
    let _ = tier;
    scalar_fold(a, b, data)
}

/// Scalar oracle: the plain byte-serial recurrence with deferred
/// modulo.
fn scalar_fold(mut a: u32, mut b: u32, data: &[u8]) -> (u32, u32) {
    for chunk in data.chunks(NMAX) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (a, b)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MOD, NMAX};
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fold_avx2(mut a: u32, mut b: u32, data: &[u8]) -> (u32, u32) {
        // Weight of the byte at in-block offset o is 32 − o: combined
        // with the per-block `b += 32·a`, every byte ends up scaled by
        // its distance from the end of the window, exactly as in the
        // serial recurrence.
        let weights = _mm256_setr_epi8(
            32, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11,
            10, 9, 8, 7, 6, 5, 4, 3, 2, 1,
        );
        let ones = _mm256_set1_epi16(1);
        let zero = _mm256_setzero_si256();
        for window in data.chunks(NMAX) {
            let mut blocks = window.chunks_exact(32);
            if window.len() >= 32 {
                // Seeding lane 0 with `a` makes the shift-add term
                // contribute the required `n·a`; `b` seeds the weighted
                // accumulator directly.
                let mut vs1 = _mm256_setr_epi32(a as i32, 0, 0, 0, 0, 0, 0, 0);
                let mut vs2 = _mm256_setr_epi32(b as i32, 0, 0, 0, 0, 0, 0, 0);
                for blk in blocks.by_ref() {
                    let v = _mm256_loadu_si256(blk.as_ptr().cast());
                    vs2 = _mm256_add_epi32(vs2, _mm256_slli_epi32(vs1, 5));
                    vs1 = _mm256_add_epi32(vs1, _mm256_sad_epu8(v, zero));
                    let weighted = _mm256_maddubs_epi16(v, weights);
                    vs2 = _mm256_add_epi32(vs2, _mm256_madd_epi16(weighted, ones));
                }
                a = hsum(vs1);
                b = hsum(vs2);
            }
            for &byte in blocks.remainder() {
                a += byte as u32;
                b += a;
            }
            a %= MOD;
            b %= MOD;
        }
        (a, b)
    }

    /// Sum of the eight u32 lanes. Every partial sum is bounded by the
    /// window total, which the NMAX bound keeps below 2^32.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256i) -> u32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_01_10_11));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testable_tiers;

    fn naive(data: &[u8]) -> (u32, u32) {
        let mut a = 1u64;
        let mut b = 0u64;
        for &byte in data {
            a = (a + byte as u64) % MOD as u64;
            b = (b + a) % MOD as u64;
        }
        (a as u32, b as u32)
    }

    #[test]
    fn matches_naive_across_tiers_and_lengths() {
        let data: Vec<u8> = (0..20_000u32).map(|i| (i * 131 % 257) as u8).collect();
        for tier in testable_tiers() {
            for len in [0, 1, 31, 32, 33, 255, 5551, 5552, 5553, 11_104, 20_000] {
                let expect = naive(&data[..len]);
                assert_eq!(fold(tier, 1, 0, &data[..len]), expect, "{tier} len {len}");
            }
        }
    }

    #[test]
    fn worst_case_bytes_do_not_overflow() {
        // All-0xFF input maximizes every running sum the NMAX bound
        // protects.
        let data = vec![0xFFu8; 3 * NMAX + 7];
        let expect = naive(&data);
        for tier in testable_tiers() {
            assert_eq!(fold(tier, 1, 0, &data), expect, "{tier}");
        }
    }

    #[test]
    fn folding_is_chainable() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        for tier in testable_tiers() {
            let (a, b) = fold(tier, 1, 0, &data[..4000]);
            let chained = fold(tier, a, b, &data[4000..]);
            assert_eq!(chained, naive(&data), "{tier}");
        }
    }
}
