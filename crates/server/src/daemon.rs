//! The `isobar serve` daemon: a blocking, thread-per-connection TCP
//! server in front of a [`ShardedStoreWriter`]/[`StoreReader`] pair.
//!
//! # Architecture
//!
//! One accept thread hands each connection to its own handler thread
//! (the workspace is std-only: no async runtime). All store access
//! funnels through one mutex-guarded `StoreState`: puts go to the
//! sharded writer *and* to an in-memory overlay so gets are
//! read-your-writes before the next commit; gets fall back to the
//! committed [`StoreReader`]. When the overlay crosses the commit
//! threshold the daemon rolls a generation: the writer's two-phase
//! manifest commit runs, the reader reopens, the overlay drains.
//!
//! # Backpressure
//!
//! Admission control is byte-denominated and happens *between* a
//! request's header and its payload: if accepting the payload would
//! push pending bytes past `max_inflight_bytes`, the daemon discards
//! the payload in bounded chunks (keeping the stream frame-aligned)
//! and answers [`Status::Busy`]. Nothing queues unboundedly — the
//! client is told to back off, exactly like the bounded `sync_channel`
//! discipline inside the sharded writer itself.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] flips a flag and pokes the listeners so
//! blocked accepts return. Handler threads notice the flag at their
//! next frame boundary — an in-flight request is always answered
//! before its connection drains. [`Server::join`] then runs the final
//! two-phase store commit, so SIGTERM never tears a manifest: the
//! store on disk is the last committed generation plus one clean
//! final one.

use crate::core::{CoreOptions, StoreCore};
use crate::obs::{self, ObsState, RequestObs, RequestRecord, ServePhase, SlowLog};
use crate::protocol::{
    discard_exact, parse_request_header, read_bounded, write_response, Opcode, RequestHeader,
    Status, MAX_NAME_LEN, MAX_TENANT_LEN, REQUEST_HEADER_LEN, TENANT_SEPARATOR,
};
use isobar::telemetry::Counter;
use isobar::trace::{TraceTag, NO_CHUNK};
use isobar::{IsobarOptions, Recorder, TelemetrySnapshot};
use isobar_store::{RealFs, StoreError};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`serve`]. Defaults suit a local soak test; see
/// `docs/SERVE.md` for guidance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Shards (codec/I/O thread pairs) per store generation.
    pub shards: u16,
    /// Bounded queue depth between the daemon and each shard.
    pub queue_depth: usize,
    /// Largest accepted `put` payload, in bytes.
    pub max_payload: u64,
    /// Admission limit: total uncommitted payload bytes (overlay plus
    /// reservations) past which puts get [`Status::Busy`].
    pub max_inflight_bytes: u64,
    /// Overlay size that triggers a generation commit.
    pub commit_threshold: u64,
    /// Connections beyond this are answered [`Status::Busy`] at accept.
    pub max_connections: usize,
    /// Requests whose wall time reaches this many milliseconds are
    /// counted slow, logged to `slow.jsonl` (when the flight recorder
    /// is on), and trigger a rate-limited flight dump. `None` disables
    /// slow accounting.
    pub slow_ms: Option<u64>,
    /// Directory for flight-recorder output (Chrome trace dumps and
    /// the slow-request log). Setting this also activates trace
    /// recording for the daemon's lifetime.
    pub flight_recorder: Option<PathBuf>,
    /// Serve a `/debug/stats` JSON snapshot on the metrics listener.
    pub debug_endpoint: bool,
    /// Journal every put to a per-tenant write-ahead log and fsync it
    /// before acking, and replay leftover journals on startup. This is
    /// the "acked means durable" contract; turning it off restores the
    /// pre-WAL behavior where a crash between generation commits loses
    /// acked-but-uncommitted puts.
    pub wal: bool,
    /// Disconnect a connection that sits idle (no new frame started)
    /// this long, so parked sockets cannot pin handler threads
    /// forever. `None` waits indefinitely.
    pub idle_timeout: Option<Duration>,
    /// Ceiling on one frame's total read time (header, identifier
    /// fields, and payload combined). A client that trickles bytes
    /// slower than this — a slowloris — is disconnected rather than
    /// allowed to hold a worker mid-frame.
    pub frame_deadline: Duration,
    /// Compression options for stored variables.
    pub isobar: IsobarOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 4,
            queue_depth: 2,
            max_payload: 64 << 20,
            max_inflight_bytes: 256 << 20,
            commit_threshold: 64 << 20,
            max_connections: 256,
            slow_ms: None,
            flight_recorder: None,
            debug_endpoint: false,
            wal: true,
            idle_timeout: Some(Duration::from_secs(300)),
            frame_deadline: Duration::from_secs(30),
            isobar: IsobarOptions::default(),
        }
    }
}

/// Largest unread payload the daemon will drain to keep a connection
/// frame-aligned after a malformed-field rejection. Anything larger is
/// answered and then disconnected — burning a worker on megabytes of
/// payload from a client that cannot even frame its identifiers is a
/// denial-of-service grant, not a courtesy. (Busy rejections always
/// drain: those clients are healthy and will retry on the connection.)
pub const MAX_DRAIN_BYTES: u64 = 1 << 20;

/// Why the daemon could not start or finish.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(io::Error),
    /// The store failed (open, put pipeline, or commit).
    Store(StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve transport error: {e}"),
            ServeError::Store(e) => write!(f, "serve store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// What a completed serve run did, returned by [`Server::join`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests with a well-formed header that were dispatched.
    pub requests: u64,
    /// Successful puts.
    pub puts: u64,
    /// Successful gets.
    pub gets: u64,
    /// Requests rejected by admission control (connection or byte
    /// budget).
    pub busy_rejected: u64,
    /// Malformed frames rejected with [`Status::BadRequest`].
    pub protocol_errors: u64,
    /// Lookups that answered [`Status::NotFound`].
    pub not_found: u64,
    /// Store generations committed (threshold rolls plus the final
    /// shutdown commit).
    pub commits: u64,
    /// Generation number of the last commit, if any put was committed.
    pub generation: Option<u64>,
    /// Write-ahead journal records replayed into the overlay when the
    /// daemon started (acked puts recovered from a previous crash).
    pub wal_replayed: u64,
    /// Requests past the `slow_ms` threshold.
    pub slow_requests: u64,
    /// Flight-recorder trace dumps written.
    pub flight_dumps: u64,
    /// Cumulative request wall time, nanoseconds.
    pub total_request_nanos: u64,
    /// Cumulative nanoseconds attributed to each phase, indexed by
    /// [`ServePhase`]` as usize`.
    pub phase_nanos: [u64; ServePhase::COUNT],
    /// Merged telemetry from every request and commit.
    pub telemetry: TelemetrySnapshot,
}

impl ServeReport {
    /// Cumulative nanoseconds spent blocked on the store mutex — the
    /// numerator of the lock-convoy share ROADMAP item 1 tracks.
    pub fn lock_wait_nanos(&self) -> u64 {
        self.phase_nanos[ServePhase::LockWait as usize]
    }

    /// Fraction of all request wall time spent blocked on the store
    /// mutex (0 when nothing was served).
    pub fn lock_wait_share(&self) -> f64 {
        if self.total_request_nanos == 0 {
            return 0.0;
        }
        self.lock_wait_nanos() as f64 / self.total_request_nanos as f64
    }
}

/// Build the store key for a `(tenant, name)` pair. Tenants are
/// namespaces by key prefixing; the separator byte is rejected inside
/// either field by the protocol decoder, so tenants cannot collide.
pub fn store_key(tenant: &str, name: &str) -> String {
    if tenant.is_empty() {
        name.to_string()
    } else {
        let mut key = String::with_capacity(tenant.len() + 1 + name.len());
        key.push_str(tenant);
        key.push(TENANT_SEPARATOR as char);
        key.push_str(name);
        key
    }
}

/// Split a store key back into `(tenant, name)`.
fn split_key(key: &str) -> (&str, &str) {
    match key.find(TENANT_SEPARATOR as char) {
        Some(i) => (&key[..i], &key[i + 1..]),
        None => ("", key),
    }
}

/// Everything store-shaped, behind one mutex. The engine itself
/// (writer, reader, overlay, journal) lives in [`StoreCore`]; this
/// adds the daemon-only admission and poison state.
struct StoreState {
    core: StoreCore<RealFs>,
    /// Bytes reserved by admitted puts whose payloads are still being
    /// read off their sockets.
    reserved_bytes: u64,
    /// A failed commit poisons the store: every later mutation is
    /// answered `ServerError` with this message instead of risking a
    /// torn manifest.
    failed: Option<String>,
}

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    puts: AtomicU64,
    gets: AtomicU64,
    busy: AtomicU64,
    protocol_errors: AtomicU64,
    not_found: AtomicU64,
    commits: AtomicU64,
    connections: AtomicU64,
}

struct Shared {
    opts: ServeOptions,
    /// Journal records replayed at startup, for [`ServeReport`].
    wal_replayed: u64,
    shutdown: AtomicBool,
    store: Mutex<StoreState>,
    metrics: Mutex<TelemetrySnapshot>,
    obs: Mutex<ObsState>,
    slow_log: SlowLog,
    stats: Stats,
}

impl Shared {
    fn merge_recorder(&self, recorder: &mut Recorder) {
        let snap = recorder.snapshot();
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&snap);
        recorder.reset();
    }

    fn lock_obs(&self) -> MutexGuard<'_, ObsState> {
        self.obs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fold one completed request into the observability state: per-op
    /// and per-tenant histograms, phase totals, the recent-request
    /// ring, slow accounting, and (rate limited) a slow-triggered
    /// flight dump.
    fn finish_request(&self, obs: RequestObs, total_nanos: u64, recorder: &mut Recorder) {
        let record = RequestRecord {
            op: obs.op,
            tenant: obs.tenant,
            status: obs.status,
            total_nanos,
            phase_nanos: obs.phase_nanos,
        };
        let slow_nanos = self.opts.slow_ms.map(|ms| ms.saturating_mul(1_000_000));
        let dumps_enabled = self.opts.flight_recorder.is_some();
        let (slow, dump_due) =
            self.lock_obs()
                .record_request(record.clone(), slow_nanos, dumps_enabled);
        if slow {
            recorder.incr(Counter::ServeSlowRequests);
            if let Some(dir) = &self.opts.flight_recorder {
                self.slow_log.append(dir, &record);
            }
        }
        if dump_due {
            // The dump runs on this handler thread so the offending
            // request's own spans are in the file.
            self.dump_flight("slow");
        }
    }

    /// Write a flight-recorder Chrome trace dump, if a dump directory
    /// is configured. Returns the file written.
    fn dump_flight(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.opts.flight_recorder.as_ref()?;
        match obs::dump_flight_trace(dir, reason) {
            Ok(path) => {
                self.lock_obs().flight_dumps += 1;
                let mut recorder = Recorder::new();
                recorder.incr(Counter::ServeFlightDumps);
                self.merge_recorder(&mut recorder);
                Some(path)
            }
            Err(_) => None,
        }
    }

    /// Commit the current generation: two-phase writer close, journal
    /// truncation, reader reopen, overlay drain. Caller holds the
    /// store lock.
    fn commit_locked(
        &self,
        state: &mut StoreState,
        recorder: &mut Recorder,
    ) -> Result<(), StoreError> {
        if !state.core.has_pending() {
            return Ok(());
        }
        let _span = isobar::trace::span(TraceTag::ServeCommit, NO_CHUNK);
        let outcome = match state.core.commit() {
            Ok(Some(outcome)) => outcome,
            Ok(None) => return Ok(()),
            Err(e) => {
                state.failed = Some(e.to_string());
                return Err(e);
            }
        };
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        recorder.incr(Counter::ServeCommits);
        if outcome.wal_truncated > 0 {
            recorder.add(Counter::ServeWalTruncations, outcome.wal_truncated);
        }
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&outcome.telemetry);
        Ok(())
    }
}

/// A running daemon. Dropping it shuts down and joins all threads.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
}

/// A cheap clone for triggering shutdown from another thread (e.g. a
/// signal watcher).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// Stop accepting, drain in-flight requests. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        poke(self.addr);
        if let Some(addr) = self.metrics_addr {
            poke(addr);
        }
    }

    /// Dump the flight recorder now (the SIGUSR1 path). Returns the
    /// Chrome trace file written, or `None` when no `flight_recorder`
    /// directory is configured or the write failed.
    pub fn dump_flight(&self, reason: &str) -> Option<PathBuf> {
        self.shared.dump_flight(reason)
    }
}

/// Unblock a listener stuck in `accept` by connecting to it.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

/// Start the daemon on `addr` (use port 0 for an ephemeral port), with
/// an optional Prometheus `/metrics` HTTP listener on `metrics_addr`.
pub fn serve(
    dir: impl AsRef<Path>,
    addr: &str,
    metrics_addr: Option<&str>,
    opts: ServeOptions,
) -> Result<Server, ServeError> {
    let dir = dir.as_ref().to_path_buf();
    // Open the engine: committed view (eagerly, when one exists, so
    // gets work before the first put of this run) plus write-ahead
    // journal replay of anything a previous run acked but never
    // committed.
    let core = StoreCore::open_real(
        &dir,
        CoreOptions {
            isobar: opts.isobar,
            shards: opts.shards,
            queue_depth: opts.queue_depth,
            commit_threshold: opts.commit_threshold,
            wal: opts.wal,
            open_reader: true,
        },
    )?;
    let wal_replayed = core.replay.records;
    let initial_metrics = {
        let mut recorder = Recorder::new();
        if wal_replayed > 0 {
            recorder.add(Counter::ServeWalReplayed, wal_replayed);
        }
        recorder.snapshot()
    };
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let metrics_listener = match metrics_addr {
        Some(addr) => Some(TcpListener::bind(addr)?),
        None => None,
    };
    let metrics_local = match &metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    if let Some(flight_dir) = &opts.flight_recorder {
        // Keep the trace rings warm for the daemon's lifetime and dump
        // them on panic. Activation is process-global, matching the
        // CLI's `--trace` behavior.
        isobar::trace::set_active(true);
        obs::install_panic_dump(flight_dir);
    }
    let shared = Arc::new(Shared {
        opts,
        wal_replayed,
        shutdown: AtomicBool::new(false),
        store: Mutex::new(StoreState {
            core,
            reserved_bytes: 0,
            failed: None,
        }),
        metrics: Mutex::new(initial_metrics),
        obs: Mutex::new(ObsState::default()),
        slow_log: SlowLog::default(),
        stats: Stats::default(),
    });

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, listener))
    };
    let metrics_thread = metrics_listener.map(|listener| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || metrics_loop(&shared, listener))
    });

    Ok(Server {
        shared,
        addr: local_addr,
        metrics_addr: metrics_local,
        accept: Some(accept),
        metrics_thread,
    })
}

impl Server {
    /// Address the request listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Address the `/metrics` listener is bound to, if one was asked
    /// for.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A cloneable handle for triggering shutdown from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
            metrics_addr: self.metrics_addr,
        }
    }

    /// Stop accepting, drain in-flight requests. Idempotent;
    /// [`Server::join`] afterwards completes the final commit.
    pub fn shutdown(&self) {
        self.handle().shutdown();
    }

    /// Wait for the drain to finish, run the final two-phase store
    /// commit, and report what the run did. Call [`Server::shutdown`]
    /// (or have a signal watcher call it) first — `join` on a live
    /// server blocks until someone does.
    pub fn join(mut self) -> Result<ServeReport, ServeError> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics_thread.take() {
            let _ = metrics.join();
        }
        let shared = &self.shared;
        let mut recorder = Recorder::new();
        let commit_result = {
            let mut state = shared.store.lock().unwrap_or_else(|e| e.into_inner());
            shared.commit_locked(&mut state, &mut recorder)
        };
        shared.merge_recorder(&mut recorder);
        let (slow_requests, flight_dumps, total_request_nanos, phase_nanos) = {
            let obs = shared.lock_obs();
            (
                obs.slow_requests,
                obs.flight_dumps,
                obs.total_request_nanos,
                obs.phase_nanos,
            )
        };
        let report = ServeReport {
            requests: shared.stats.requests.load(Ordering::Relaxed),
            puts: shared.stats.puts.load(Ordering::Relaxed),
            gets: shared.stats.gets.load(Ordering::Relaxed),
            busy_rejected: shared.stats.busy.load(Ordering::Relaxed),
            protocol_errors: shared.stats.protocol_errors.load(Ordering::Relaxed),
            not_found: shared.stats.not_found.load(Ordering::Relaxed),
            commits: shared.stats.commits.load(Ordering::Relaxed),
            generation: shared
                .store
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .core
                .last_generation,
            wal_replayed: shared.wal_replayed,
            slow_requests,
            flight_dumps,
            total_request_nanos,
            phase_nanos,
            telemetry: shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        };
        commit_result?;
        Ok(report)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped server still drains and joins; the final commit is
        // only reachable through join(), so callers that care about
        // the committed generation must use it.
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics_thread.take() {
            let _ = metrics.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        handlers.retain(|h| !h.is_finished());
        if handlers.len() >= shared.opts.max_connections {
            shared.stats.busy.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = write_response(&mut stream, Status::Busy, b"connection limit reached");
            continue;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        // Stamp the hand-off so the gap between accept and the handler
        // thread starting is attributed to the first request's accept
        // phase.
        let accepted = Instant::now();
        handlers.push(std::thread::spawn(move || {
            let accept_nanos = accepted.elapsed().as_nanos() as u64;
            handle_connection(&shared, stream, accept_nanos);
            isobar::trace::flush_thread();
        }));
    }
    for handler in handlers {
        let _ = handler.join();
    }
}

/// What polling for the start of the next frame produced.
enum FirstByte {
    Byte(u8),
    Eof,
    Shutdown,
    Error,
}

/// Set a socket read timeout, logging the failure once per process.
/// Returns `false` when the timeout could not be set — callers must
/// then drop the connection rather than serve it with *no* timeout,
/// which would hand a stalled peer a thread forever.
fn set_read_timeout_checked(stream: &TcpStream, timeout: Duration) -> bool {
    match stream.set_read_timeout(Some(timeout)) {
        Ok(()) => true,
        Err(e) => {
            static LOGGED: Once = Once::new();
            LOGGED.call_once(|| {
                eprintln!(
                    "isobar-serve: set_read_timeout failed ({e}); \
                     closing connections instead of serving without timeouts"
                );
            });
            false
        }
    }
}

/// Wait for the first byte of the next frame with a short poll
/// timeout so the thread notices shutdown while idle. Reading only
/// one byte here means a timeout can never strand a partial read —
/// frame alignment is preserved across polls. A connection that idles
/// past `idle_timeout` is reported as an error so the handler drops
/// it: parked sockets must not pin worker threads indefinitely.
fn poll_first_byte(stream: &mut TcpStream, shared: &Shared) -> FirstByte {
    if !set_read_timeout_checked(stream, Duration::from_millis(100)) {
        return FirstByte::Error;
    }
    let idle_deadline = shared.opts.idle_timeout.map(|t| Instant::now() + t);
    let mut byte = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return FirstByte::Shutdown;
        }
        if let Some(deadline) = idle_deadline {
            if Instant::now() >= deadline {
                return FirstByte::Error;
            }
        }
        match stream.read(&mut byte) {
            Ok(0) => return FirstByte::Eof,
            Ok(_) => return FirstByte::Byte(byte[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => return FirstByte::Error,
        }
    }
}

/// The connection for the duration of one frame, with the per-frame
/// read deadline enforced on every read: the socket timeout is
/// re-armed to the remaining budget before each read, so a client
/// trickling one byte per timeout window (a slowloris) is bounded by
/// `frame_deadline` in total, not per read. Writes pass through.
struct FrameStream<'a> {
    stream: &'a mut TcpStream,
    deadline: Instant,
}

impl Read for FrameStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let now = Instant::now();
        if now >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame deadline exceeded",
            ));
        }
        let remaining = (self.deadline - now).max(Duration::from_millis(1));
        if !set_read_timeout_checked(self.stream, remaining) {
            return Err(io::Error::new(
                io::ErrorKind::Other,
                "cannot arm frame deadline",
            ));
        }
        match self.stream.read(buf) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame deadline exceeded",
            )),
            other => other,
        }
    }
}

impl Write for FrameStream<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, accept_nanos: u64) {
    let _ = stream.set_nodelay(true);
    let mut recorder = Recorder::new();
    let mut accept_pending = accept_nanos;
    loop {
        let first = match poll_first_byte(&mut stream, shared) {
            FirstByte::Byte(b) => b,
            FirstByte::Eof | FirstByte::Error => break,
            FirstByte::Shutdown => {
                let _ = write_response(&mut stream, Status::ShuttingDown, b"daemon draining");
                break;
            }
        };
        // The request clock starts at its first byte; client think
        // time between frames is not request latency.
        let request_start = Instant::now();
        let mut obs = RequestObs::new();
        obs.add(ServePhase::Accept, std::mem::take(&mut accept_pending));
        let header_span = isobar::trace::span(TraceTag::ServeHeaderParse, NO_CHUNK);
        // The frame has started: every read from here on runs under
        // the per-frame deadline, so a stalled or trickling client
        // cannot pin the thread past `frame_deadline` in total.
        let mut frame = FrameStream {
            stream: &mut stream,
            deadline: request_start + shared.opts.frame_deadline,
        };
        let mut header_buf = [0u8; REQUEST_HEADER_LEN];
        header_buf[0] = first;
        if frame.read_exact(&mut header_buf[1..]).is_err() {
            count_protocol_error(shared, &mut recorder);
            break;
        }
        let header = match parse_request_header(&header_buf, shared.opts.max_payload) {
            Ok(header) => header,
            Err(e) => {
                drop(header_span);
                count_protocol_error(shared, &mut recorder);
                let _ = write_response(&mut frame, Status::BadRequest, e.to_string().as_bytes());
                // The stream may be mid-frame; alignment is gone.
                break;
            }
        };
        drop(header_span);
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        recorder.incr(Counter::ServeRequests);
        obs.op = obs::op_index(header.opcode);
        // Everything since the first byte — the timeout setup syscall,
        // the header read and decode, and dispatch bookkeeping — is
        // header-parse time (one boundary-clock stretch).
        obs.charge(ServePhase::HeaderParse);
        let keep = {
            let _span = isobar::trace::span(TraceTag::ServeRequest, NO_CHUNK);
            handle_request(shared, &mut frame, &header, &mut recorder, &mut obs)
        };
        // The accept hand-off happened before the first byte arrived,
        // so wall time includes it on top of the frame clock.
        let total_nanos = (request_start.elapsed().as_nanos() as u64)
            .saturating_add(obs.phase_nanos[ServePhase::Accept as usize]);
        shared.finish_request(obs, total_nanos, &mut recorder);
        shared.merge_recorder(&mut recorder);
        if !keep {
            break;
        }
    }
    shared.merge_recorder(&mut recorder);
}

fn count_protocol_error(shared: &Shared, recorder: &mut Recorder) {
    shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    recorder.incr(Counter::ServeProtocolErrors);
}

/// Acquire the store mutex with the wait attributed to the request's
/// lock-wait phase (the convoy scoreboard for ROADMAP item 1).
fn lock_store<'a>(shared: &'a Shared, obs: &mut RequestObs) -> MutexGuard<'a, StoreState> {
    obs.time(ServePhase::LockWait, || {
        shared.store.lock().unwrap_or_else(|e| e.into_inner())
    })
}

/// Release the store mutex with the handoff attributed to lock-wait:
/// under contention an unlock wakes a waiter (a futex syscall), and
/// that cost belongs on the same convoy scoreboard as the waits.
fn unlock_store(state: MutexGuard<'_, StoreState>, obs: &mut RequestObs) {
    obs.time(ServePhase::LockWait, || drop(state));
}

/// Write the response frame with the time attributed to the
/// write-response phase, stamping the request's final status.
fn respond(stream: &mut FrameStream<'_>, obs: &mut RequestObs, status: Status, body: &[u8]) {
    obs.status = obs::status_name(status);
    obs.time(ServePhase::WriteResponse, || {
        let _ = write_response(stream, status, body);
    });
}

/// Serve one request whose header has been decoded. Returns whether
/// the connection is still frame-aligned and should be kept open.
fn handle_request(
    shared: &Shared,
    stream: &mut FrameStream<'_>,
    header: &RequestHeader,
    recorder: &mut Recorder,
    obs: &mut RequestObs,
) -> bool {
    // Tenant and name are small (caps enforced by the header parse).
    let fields = obs.time(ServePhase::HeaderParse, || {
        crate::protocol::read_request_fields(&mut *stream, header)
    });
    let (tenant, name) = match fields {
        Ok(fields) => fields,
        Err(crate::protocol::FrameError::Proto(e)) => {
            count_protocol_error(shared, recorder);
            // The identifier bytes were consumed, so the stream is
            // still frame-aligned for everything but the payload.
            // Drain a small payload to keep the connection; a large
            // one is answered and dropped (bounded drain).
            if u64::from(header.payload_len) > MAX_DRAIN_BYTES {
                respond(stream, obs, Status::BadRequest, e.to_string().as_bytes());
                return false;
            }
            if header.payload_len > 0 {
                let drained = obs.time(ServePhase::PayloadRead, || {
                    discard_exact(stream, u64::from(header.payload_len))
                });
                if drained.is_err() {
                    obs.status = obs::status_name(Status::BadRequest);
                    return false;
                }
            }
            respond(stream, obs, Status::BadRequest, e.to_string().as_bytes());
            return true;
        }
        Err(crate::protocol::FrameError::Io(_)) => return false,
    };
    obs.tenant = tenant.clone();
    match header.opcode {
        Opcode::Put => handle_put(shared, stream, header, &tenant, &name, recorder, obs),
        Opcode::Get => handle_get(shared, stream, header.step, &tenant, &name, recorder, obs),
        Opcode::Stat => handle_stat(shared, stream, header.step, &tenant, &name, obs),
        Opcode::Ls => handle_ls(shared, stream, &tenant, obs),
    }
}

/// Reject a put whose payload is still unread: drain it in bounded
/// chunks to stay frame-aligned (under the frame deadline), then
/// answer `status`. Unlike the malformed-field path, a Busy or
/// ShuttingDown rejection always drains — well-behaved clients retry
/// on the same connection.
fn reject_put(
    stream: &mut FrameStream<'_>,
    obs: &mut RequestObs,
    payload_len: u32,
    status: Status,
    message: &str,
) -> bool {
    let drained = obs.time(ServePhase::PayloadRead, || {
        discard_exact(stream, u64::from(payload_len))
    });
    if drained.is_err() {
        obs.status = obs::status_name(status);
        return false;
    }
    respond(stream, obs, status, message.as_bytes());
    true
}

fn handle_put(
    shared: &Shared,
    stream: &mut FrameStream<'_>,
    header: &RequestHeader,
    tenant: &str,
    name: &str,
    recorder: &mut Recorder,
    obs: &mut RequestObs,
) -> bool {
    let len = u64::from(header.payload_len);
    if shared.shutdown.load(Ordering::SeqCst) {
        return reject_put(
            stream,
            obs,
            header.payload_len,
            Status::ShuttingDown,
            "daemon draining",
        );
    }
    // Admission: reserve the bytes before reading them, or refuse.
    {
        let mut state = lock_store(shared, obs);
        let verdict = obs.time(ServePhase::Admission, || {
            if let Some(msg) = &state.failed {
                return Some((Status::ServerError, msg.clone()));
            }
            if state.core.pending_bytes + state.reserved_bytes + len
                > shared.opts.max_inflight_bytes
            {
                return Some((
                    Status::Busy,
                    "in-flight byte budget full, retry later".to_string(),
                ));
            }
            state.reserved_bytes += len;
            None
        });
        unlock_store(state, obs);
        if let Some((status, message)) = verdict {
            if status == Status::Busy {
                shared.stats.busy.fetch_add(1, Ordering::Relaxed);
                recorder.incr(Counter::ServeBusyRejected);
            }
            return reject_put(stream, obs, header.payload_len, status, &message);
        }
    }
    let unreserve = |shared: &Shared| {
        let mut state = shared.store.lock().unwrap_or_else(|e| e.into_inner());
        state.reserved_bytes = state.reserved_bytes.saturating_sub(len);
    };
    let payload = obs.time(ServePhase::PayloadRead, || {
        read_bounded(&mut *stream, header.payload_len as usize)
    });
    let payload = match payload {
        Ok(payload) => payload,
        Err(_) => {
            unreserve(shared);
            return false;
        }
    };
    let mut state = lock_store(shared, obs);
    state.reserved_bytes = state.reserved_bytes.saturating_sub(len);
    let result = put_locked(shared, &mut state, header, tenant, name, payload, recorder, obs);
    unlock_store(state, obs);
    match result {
        Ok(()) => {
            shared.stats.puts.fetch_add(1, Ordering::Relaxed);
            recorder.add(Counter::ServePutBytes, len);
            respond(stream, obs, Status::Ok, b"");
            true
        }
        Err(e) => {
            respond(stream, obs, Status::ServerError, e.to_string().as_bytes());
            true
        }
    }
}

/// The store side of a put: lazy writer creation, the sharded put
/// itself, the journal fsync (the ack barrier), the overlay insert,
/// and a threshold commit. Caller holds the store lock. The journal
/// append runs *after* the writer put so a put the daemon is about to
/// reject with `ServerError` is never resurrected by replay.
#[allow(clippy::too_many_arguments)]
fn put_locked(
    shared: &Shared,
    state: &mut StoreState,
    header: &RequestHeader,
    tenant: &str,
    name: &str,
    payload: Vec<u8>,
    recorder: &mut Recorder,
    obs: &mut RequestObs,
) -> Result<(), StoreError> {
    let key = store_key(tenant, name);
    obs.time(ServePhase::StorePut, || {
        state
            .core
            .store_put(header.step, &key, payload.clone(), usize::from(header.width))
    })?;
    let wal_bytes = obs.time(ServePhase::WalFsync, || {
        state
            .core
            .wal_append(tenant, header.step, name, header.width, &payload)
    })?;
    if wal_bytes > 0 {
        recorder.incr(Counter::ServeWalAppends);
        recorder.add(Counter::ServeWalBytes, wal_bytes);
    }
    obs.time(ServePhase::Overlay, || {
        state
            .core
            .overlay_insert(header.step, key, header.width, payload);
    });
    if state.core.over_threshold() {
        // commit_locked emits its own ServeCommit span; attribute the
        // wall time without opening a duplicate.
        obs.time_unspanned(ServePhase::Commit, || {
            shared.commit_locked(state, recorder)
        })?;
    }
    Ok(())
}

fn handle_get(
    shared: &Shared,
    stream: &mut FrameStream<'_>,
    step: u32,
    tenant: &str,
    name: &str,
    recorder: &mut Recorder,
    obs: &mut RequestObs,
) -> bool {
    let key = store_key(tenant, name);
    let state = lock_store(shared, obs);
    let overlay_hit = obs.time(ServePhase::Overlay, || {
        state
            .core
            .overlay
            .get(&(step, key.clone()))
            .map(|entry| entry.data.clone())
    });
    if let Some(data) = overlay_hit {
        unlock_store(state, obs);
        shared.stats.gets.fetch_add(1, Ordering::Relaxed);
        recorder.add(Counter::ServeGetBytes, data.len() as u64);
        respond(stream, obs, Status::Ok, &data);
        return true;
    }
    let result = obs.time(ServePhase::StoreGet, || match &state.core.reader {
        Some(reader) => reader.get(step, &key),
        None => Err(StoreError::NotFound {
            step,
            name: key.clone(),
        }),
    });
    unlock_store(state, obs);
    match result {
        Ok(data) => {
            shared.stats.gets.fetch_add(1, Ordering::Relaxed);
            recorder.add(Counter::ServeGetBytes, data.len() as u64);
            respond(stream, obs, Status::Ok, &data);
        }
        Err(StoreError::NotFound { .. }) => {
            shared.stats.not_found.fetch_add(1, Ordering::Relaxed);
            respond(
                stream,
                obs,
                Status::NotFound,
                format!("no variable '{name}' at step {step}").as_bytes(),
            );
        }
        Err(e) => {
            respond(stream, obs, Status::ServerError, e.to_string().as_bytes());
        }
    }
    true
}

fn handle_stat(
    shared: &Shared,
    stream: &mut FrameStream<'_>,
    step: u32,
    tenant: &str,
    name: &str,
    obs: &mut RequestObs,
) -> bool {
    let key = store_key(tenant, name);
    let state = lock_store(shared, obs);
    let overlay_line = obs.time(ServePhase::Overlay, || {
        state.core.overlay.get(&(step, key.clone())).map(|entry| {
            format!(
                "name={name} step={step} raw_len={} width={} committed=false\n",
                entry.data.len(),
                entry.width
            )
        })
    });
    if let Some(line) = overlay_line {
        unlock_store(state, obs);
        respond(stream, obs, Status::Ok, line.as_bytes());
        return true;
    }
    let line = obs.time(ServePhase::StoreGet, || match &state.core.reader {
        Some(reader) => reader.entry(step, &key).map(|entry| {
            format!(
                "name={name} step={step} raw_len={} container_len={} width={} committed=true\n",
                entry.raw_len, entry.container_len, entry.width
            )
        }),
        None => Err(StoreError::NotFound {
            step,
            name: key.clone(),
        }),
    });
    unlock_store(state, obs);
    match line {
        Ok(line) => {
            respond(stream, obs, Status::Ok, line.as_bytes());
        }
        Err(StoreError::NotFound { .. }) => {
            shared.stats.not_found.fetch_add(1, Ordering::Relaxed);
            respond(
                stream,
                obs,
                Status::NotFound,
                format!("no variable '{name}' at step {step}").as_bytes(),
            );
        }
        Err(e) => {
            respond(stream, obs, Status::ServerError, e.to_string().as_bytes());
        }
    }
    true
}

fn handle_ls(
    shared: &Shared,
    stream: &mut FrameStream<'_>,
    tenant: &str,
    obs: &mut RequestObs,
) -> bool {
    let state = lock_store(shared, obs);
    // (step, name) -> raw_len; overlay entries shadow committed ones.
    let rows = obs.time(ServePhase::StoreGet, || {
        let mut rows: BTreeMap<(u32, String), u64> = BTreeMap::new();
        if let Some(reader) = &state.core.reader {
            for entry in reader.live_entries() {
                let (entry_tenant, name) = split_key(&entry.name);
                if entry_tenant == tenant {
                    rows.insert((entry.step, name.to_string()), entry.raw_len);
                }
            }
        }
        for ((step, key), entry) in &state.core.overlay {
            let (entry_tenant, name) = split_key(key);
            if entry_tenant == tenant {
                rows.insert((*step, name.to_string()), entry.data.len() as u64);
            }
        }
        rows
    });
    unlock_store(state, obs);
    let mut body = String::new();
    for ((step, name), raw_len) in rows {
        body.push_str(&format!("{step}\t{name}\t{raw_len}\n"));
    }
    respond(stream, obs, Status::Ok, body.as_bytes());
    true
}

/// Minimal HTTP/1.0 responder for `GET /metrics`: renders the shared
/// telemetry snapshot in Prometheus text exposition. Requests are
/// bounded (4 KiB, 2 s) and handled serially — this is an
/// observability side-channel, not a data path.
fn metrics_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if !set_read_timeout_checked(&stream, Duration::from_secs(2)) {
            // No timeout means an idle scraper could pin this (serial)
            // loop forever; dropping the connection is the safe
            // fallback.
            continue;
        }
        let mut request = [0u8; 4096];
        let mut filled = 0;
        // Read until the header terminator or the cap; anything longer
        // is ignored.
        while filled < request.len() {
            match stream.read(&mut request[filled..]) {
                Ok(0) => break,
                Ok(n) => {
                    filled += n;
                    if request[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let line = std::str::from_utf8(&request[..filled])
            .unwrap_or("")
            .lines()
            .next()
            .unwrap_or("");
        let path = line.split_whitespace().nth(1).unwrap_or("");
        if line.starts_with("GET ") && path == "/metrics" {
            let mut body = shared
                .metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .to_prometheus();
            shared.lock_obs().render_prometheus(&mut body);
            let _ = write!(
                stream,
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
        } else if line.starts_with("GET ") && path == "/debug/stats" && shared.opts.debug_endpoint {
            let body = debug_stats_json(shared);
            let _ = write!(
                stream,
                "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
        } else {
            let _ = write!(
                stream,
                "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"
            );
        }
        let _ = stream.flush();
    }
}

/// Render the `/debug/stats` JSON snapshot: daemon-level gauges (the
/// store lock is sampled, not held, across the obs render) spliced
/// together with the observability state's totals, histograms, and
/// recent-request ring.
fn debug_stats_json(shared: &Shared) -> String {
    let (overlay_entries, overlay_bytes, reserved_bytes, last_generation, failed) = {
        let state = shared.store.lock().unwrap_or_else(|e| e.into_inner());
        (
            state.core.overlay.len() as u64,
            state.core.pending_bytes,
            state.reserved_bytes,
            state.core.last_generation,
            state.failed.clone(),
        )
    };
    let mut out = String::with_capacity(4096);
    out.push('{');
    out.push_str(&format!(
        "\"connections\": {}, \"requests\": {}, \"puts\": {}, \"gets\": {}, \
         \"busy_rejected\": {}, \"protocol_errors\": {}, \"not_found\": {}, \"commits\": {}",
        shared.stats.connections.load(Ordering::Relaxed),
        shared.stats.requests.load(Ordering::Relaxed),
        shared.stats.puts.load(Ordering::Relaxed),
        shared.stats.gets.load(Ordering::Relaxed),
        shared.stats.busy.load(Ordering::Relaxed),
        shared.stats.protocol_errors.load(Ordering::Relaxed),
        shared.stats.not_found.load(Ordering::Relaxed),
        shared.stats.commits.load(Ordering::Relaxed),
    ));
    out.push_str(&format!(
        ", \"overlay_entries\": {overlay_entries}, \"overlay_bytes\": {overlay_bytes}, \
         \"reserved_bytes\": {reserved_bytes}, \"in_flight_bytes\": {}, \
         \"commit_backlog_bytes\": {overlay_bytes}, \"commit_threshold\": {}, \
         \"wal_replayed\": {}",
        overlay_bytes.saturating_add(reserved_bytes),
        shared.opts.commit_threshold,
        shared.wal_replayed,
    ));
    match last_generation {
        Some(generation) => out.push_str(&format!(", \"generation\": {generation}")),
        None => out.push_str(", \"generation\": null"),
    }
    match failed {
        Some(msg) => {
            out.push_str(", \"failed\": \"");
            out.push_str(&obs::escape_json(&msg));
            out.push('"');
        }
        None => out.push_str(", \"failed\": null"),
    }
    out.push_str(", ");
    shared.lock_obs().write_debug_json(&mut out);
    out.push('}');
    out
}

const _: () = {
    // The tenant and name caps must fit the store's u16 name-length
    // limit once joined with the separator.
    assert!(MAX_TENANT_LEN + 1 + MAX_NAME_LEN < u16::MAX as usize);
};
