//! Plain-data snapshot of a recorder, with JSON in/out and merging.

use crate::json::{self, JsonValue};
use crate::{Counter, Stage};

/// Version stamped into every serialized snapshot. Bump when the JSON
/// shape changes incompatibly.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 1;

/// Buckets in the τ-margin histogram. Linear, 0.25 wide, covering
/// margins in `[0, 4)`; the last bucket also absorbs everything ≥ 3.75.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// EUPA combination names, indexed `codec_idx * 2 + lin_idx` where
/// codec 0 = zlib (Deflate), 1 = bzlib2, and linearization 0 = row,
/// 1 = column — matching the four candidates of the paper's §II.C.
pub const EUPA_COMBOS: [&str; 4] = ["zlib_row", "zlib_column", "bzlib2_row", "bzlib2_column"];

// Only called from the recording paths, which compile away when the
// `enabled` feature is off.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
#[inline]
pub(crate) fn margin_bucket(margin: f64) -> usize {
    if margin.is_nan() || margin <= 0.0 {
        return 0;
    }
    ((margin * 4.0) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Display name for a [`TelemetrySnapshot::kernel_tier`] tag. Mirrors
/// `isobar-simd`'s `KernelTier::name` (this crate stays dependency-free,
/// so the tiny mapping is duplicated; unknown tags render as `scalar`).
pub fn kernel_tier_name(tier: u8) -> &'static str {
    match tier {
        1 => "sse2",
        2 => "avx2",
        3 => "neon",
        _ => "scalar",
    }
}

#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
#[inline]
pub(crate) fn combo_index(codec_idx: usize, lin_idx: usize) -> usize {
    debug_assert!(codec_idx < 2 && lin_idx < 2);
    (codec_idx * 2 + lin_idx).min(EUPA_COMBOS.len() - 1)
}

/// Aggregated wall-time statistics for one pipeline stage.
///
/// `min_nanos`/`max_nanos` are meaningful only when `count > 0`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// Spans recorded.
    pub count: u64,
    /// Sum of all span durations, nanoseconds.
    pub total_nanos: u64,
    /// Shortest span, nanoseconds (0 when no spans recorded).
    pub min_nanos: u64,
    /// Longest span, nanoseconds.
    pub max_nanos: u64,
}

impl StageStats {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    #[inline]
    pub(crate) fn record(&mut self, nanos: u64) {
        if self.count == 0 {
            self.min_nanos = nanos;
            self.max_nanos = nanos;
        } else {
            self.min_nanos = self.min_nanos.min(nanos);
            self.max_nanos = self.max_nanos.max(nanos);
        }
        self.count += 1;
        self.total_nanos += nanos;
    }

    /// Fold another stage's stats into this one. Commutative.
    ///
    /// Count and total saturate rather than wrap: merging snapshots
    /// from long-running workers must never overflow in release builds
    /// (where `+` wraps silently).
    pub fn merge(&mut self, other: &StageStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.total_nanos = self.total_nanos.saturating_add(other.total_nanos);
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Mean span duration in nanoseconds (0 when nothing recorded).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// Every telemetry total as plain, fixed-size data.
///
/// The struct is all inline arrays: cloning or defaulting one never
/// allocates, which is what lets the recorder live inside hot loops.
/// Heap memory is only touched by [`TelemetrySnapshot::to_json`] /
/// [`TelemetrySnapshot::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Monotonic counters, indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
    /// Per-stage wall-time stats, indexed by `Stage as usize`.
    pub stages: [StageStats; Stage::COUNT],
    /// Histogram of analyzer τ-margins (see
    /// [`Recorder::record_tau_margin`](crate::Recorder::record_tau_margin)).
    pub tau_margin: [u64; HISTOGRAM_BUCKETS],
    /// How often EUPA selected each combination, indexed per [`EUPA_COMBOS`].
    pub eupa_selected: [u64; EUPA_COMBOS.len()],
    /// EUPA trial compressions run per combination.
    pub eupa_trial_count: [u64; EUPA_COMBOS.len()],
    /// Total nanoseconds spent trial-compressing each combination.
    pub eupa_trial_nanos: [u64; EUPA_COMBOS.len()],
    /// SIMD kernel tier the pipeline ran on (`isobar-simd`'s
    /// `KernelTier::as_u8`: 0 = scalar or unrecorded, 1 = sse2,
    /// 2 = avx2, 3 = neon).
    pub kernel_tier: u8,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            counters: [0; Counter::COUNT],
            stages: [StageStats::default(); Stage::COUNT],
            tau_margin: [0; HISTOGRAM_BUCKETS],
            eupa_selected: [0; EUPA_COMBOS.len()],
            eupa_trial_count: [0; EUPA_COMBOS.len()],
            eupa_trial_nanos: [0; EUPA_COMBOS.len()],
            kernel_tier: 0,
        }
    }
}

impl TelemetrySnapshot {
    /// Read one counter by name rather than index.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Read one stage's stats by name rather than index.
    pub fn stage(&self, stage: Stage) -> StageStats {
        self.stages[stage as usize]
    }

    /// True when nothing was ever recorded (e.g. the telemetry-off build).
    pub fn is_empty(&self) -> bool {
        *self == TelemetrySnapshot::default()
    }

    /// Fold another snapshot into this one. Commutative and
    /// associative, so per-thread snapshots merge in any order.
    ///
    /// All additions saturate: merging many long-running worker
    /// snapshots pins at `u64::MAX` instead of wrapping, which in a
    /// release build would silently reset a counter to near zero.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (mine, theirs) in self.counters.iter_mut().zip(&other.counters) {
            *mine = mine.saturating_add(*theirs);
        }
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.tau_margin.iter_mut().zip(&other.tau_margin) {
            *mine = mine.saturating_add(*theirs);
        }
        for (mine, theirs) in self.eupa_selected.iter_mut().zip(&other.eupa_selected) {
            *mine = mine.saturating_add(*theirs);
        }
        for (mine, theirs) in self
            .eupa_trial_count
            .iter_mut()
            .zip(&other.eupa_trial_count)
        {
            *mine = mine.saturating_add(*theirs);
        }
        for (mine, theirs) in self
            .eupa_trial_nanos
            .iter_mut()
            .zip(&other.eupa_trial_nanos)
        {
            *mine = mine.saturating_add(*theirs);
        }
        // Within one process every worker runs the same tier; the max
        // keeps a recorded tier over an unrecorded (0 = scalar) one.
        self.kernel_tier = self.kernel_tier.max(other.kernel_tier);
    }

    /// Serialize as pretty-printed JSON with a stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        json::field_u64(&mut out, 1, "schema_version", SNAPSHOT_SCHEMA_VERSION, true);
        json::field_u64(
            &mut out,
            1,
            "kernel_tier",
            u64::from(self.kernel_tier),
            true,
        );

        out.push_str("  \"counters\": {\n");
        for (i, counter) in Counter::ALL.iter().enumerate() {
            json::field_u64(
                &mut out,
                2,
                counter.name(),
                self.counters[i],
                i + 1 < Counter::COUNT,
            );
        }
        out.push_str("  },\n");

        out.push_str("  \"stages\": {\n");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let s = &self.stages[i];
            out.push_str("    \"");
            out.push_str(stage.name());
            out.push_str("\": {");
            out.push_str(&format!(
                "\"count\": {}, \"total_nanos\": {}, \"min_nanos\": {}, \"max_nanos\": {}",
                s.count, s.total_nanos, s.min_nanos, s.max_nanos
            ));
            out.push('}');
            if i + 1 < Stage::COUNT {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  },\n");

        out.push_str("  \"histograms\": {\n");
        out.push_str("    \"tau_margin\": ");
        json::array_u64(&mut out, &self.tau_margin);
        out.push('\n');
        out.push_str("  },\n");

        out.push_str("  \"eupa\": {\n");
        out.push_str("    \"combos\": [");
        for (i, name) in EUPA_COMBOS.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(name);
            out.push('"');
        }
        out.push_str("],\n");
        out.push_str("    \"selected\": ");
        json::array_u64(&mut out, &self.eupa_selected);
        out.push_str(",\n    \"trial_count\": ");
        json::array_u64(&mut out, &self.eupa_trial_count);
        out.push_str(",\n    \"trial_nanos\": ");
        json::array_u64(&mut out, &self.eupa_trial_nanos);
        out.push('\n');
        out.push_str("  }\n");
        out.push('}');
        out
    }

    /// Parse a snapshot previously produced by
    /// [`TelemetrySnapshot::to_json`]. Unknown keys are ignored and
    /// missing ones read as zero, so snapshots stay parseable across
    /// minor additions; a different `schema_version` is an error.
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, String> {
        let root = json::parse(text)?;
        let version = root.get("schema_version").and_then(JsonValue::as_u64);
        if version != Some(SNAPSHOT_SCHEMA_VERSION) {
            return Err(format!(
                "unsupported telemetry schema_version {version:?} (expected {SNAPSHOT_SCHEMA_VERSION})"
            ));
        }

        let mut snap = TelemetrySnapshot::default();
        if let Some(tier) = root.get("kernel_tier").and_then(JsonValue::as_u64) {
            snap.kernel_tier = tier.min(u64::from(u8::MAX)) as u8;
        }
        if let Some(counters) = root.get("counters") {
            for (i, counter) in Counter::ALL.iter().enumerate() {
                if let Some(v) = counters.get(counter.name()).and_then(JsonValue::as_u64) {
                    snap.counters[i] = v;
                }
            }
        }
        if let Some(stages) = root.get("stages") {
            for (i, stage) in Stage::ALL.iter().enumerate() {
                if let Some(obj) = stages.get(stage.name()) {
                    let field = |name: &str| obj.get(name).and_then(JsonValue::as_u64).unwrap_or(0);
                    snap.stages[i] = StageStats {
                        count: field("count"),
                        total_nanos: field("total_nanos"),
                        min_nanos: field("min_nanos"),
                        max_nanos: field("max_nanos"),
                    };
                }
            }
        }
        if let Some(buckets) = root
            .get("histograms")
            .and_then(|h| h.get("tau_margin"))
            .and_then(JsonValue::as_array)
        {
            for (slot, value) in snap.tau_margin.iter_mut().zip(buckets) {
                *slot = value.as_u64().unwrap_or(0);
            }
        }
        if let Some(eupa) = root.get("eupa") {
            let fill = |dst: &mut [u64], key: &str| {
                if let Some(values) = eupa.get(key).and_then(JsonValue::as_array) {
                    for (slot, value) in dst.iter_mut().zip(values) {
                        *slot = value.as_u64().unwrap_or(0);
                    }
                }
            };
            fill(&mut snap.eupa_selected, "selected");
            fill(&mut snap.eupa_trial_count, "trial_count");
            fill(&mut snap.eupa_trial_nanos, "trial_nanos");
        }
        Ok(snap)
    }

    /// Render a human-readable table (the CLI's `--stats=table` view).
    /// Zero rows are skipped so quick runs stay readable.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry\n");
        out.push_str(&format!(
            "  kernel tier: {}\n",
            kernel_tier_name(self.kernel_tier)
        ));
        out.push_str("  counters\n");
        let mut any = false;
        for (i, counter) in Counter::ALL.iter().enumerate() {
            if self.counters[i] != 0 {
                any = true;
                out.push_str(&format!(
                    "    {:<30} {:>16}\n",
                    counter.name(),
                    self.counters[i]
                ));
            }
        }
        if !any {
            out.push_str("    (none)\n");
        }
        out.push_str("  stages (count / total ms / mean us)\n");
        any = false;
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let s = &self.stages[i];
            if s.count != 0 {
                any = true;
                out.push_str(&format!(
                    "    {:<30} {:>8} {:>12.3} {:>12.3}\n",
                    stage.name(),
                    s.count,
                    s.total_nanos as f64 / 1e6,
                    s.mean_nanos() as f64 / 1e3,
                ));
            }
        }
        if !any {
            out.push_str("    (none)\n");
        }
        if self.tau_margin.iter().any(|&b| b != 0) {
            out.push_str("  tau_margin histogram (bucket width 0.25, last open-ended)\n");
            for (i, &count) in self.tau_margin.iter().enumerate() {
                if count != 0 {
                    out.push_str(&format!(
                        "    [{:>5.2}, {:>5.2}) {:>16}\n",
                        i as f64 * 0.25,
                        (i + 1) as f64 * 0.25,
                        count
                    ));
                }
            }
        }
        if self.eupa_trial_count.iter().any(|&c| c != 0) {
            out.push_str("  eupa (selected / trials / trial ms)\n");
            for (i, name) in EUPA_COMBOS.iter().enumerate() {
                out.push_str(&format!(
                    "    {:<30} {:>8} {:>8} {:>12.3}\n",
                    name,
                    self.eupa_selected[i],
                    self.eupa_trial_count[i],
                    self.eupa_trial_nanos[i] as f64 / 1e6,
                ));
            }
        }
        out
    }

    /// Render in the Prometheus text exposition format (version 0.0.4,
    /// what `promtool` and node-exporter text collectors accept).
    ///
    /// Every counter becomes its own `isobar_<name>_total` counter
    /// family; every stage becomes an
    /// `isobar_stage_<name>_duration_seconds` summary (`_count`,
    /// `_sum`, and `quantile="0"`/`"1"` samples carrying the observed
    /// min/max); the τ-margin histogram becomes a native Prometheus
    /// histogram with cumulative `le` buckets; EUPA totals are
    /// `combo`-labeled counter families. Output is byte-stable for a
    /// given snapshot (enum declaration order, fixed float precision),
    /// so it can be golden-tested.
    pub fn to_prometheus(&self) -> String {
        let secs = |nanos: u64| format!("{:.9}", nanos as f64 / 1e9);
        let mut out = String::with_capacity(8192);

        out.push_str(&format!(
            "# HELP isobar_kernel_tier_info SIMD kernel tier the pipeline ran on.\n\
             # TYPE isobar_kernel_tier_info gauge\n\
             isobar_kernel_tier_info{{tier=\"{}\"}} 1\n",
            kernel_tier_name(self.kernel_tier)
        ));

        for (i, counter) in Counter::ALL.iter().enumerate() {
            let name = counter.name();
            out.push_str(&format!(
                "# HELP isobar_{name}_total ISOBAR pipeline counter {name}.\n\
                 # TYPE isobar_{name}_total counter\n\
                 isobar_{name}_total {}\n",
                self.counters[i]
            ));
        }

        for (i, stage) in Stage::ALL.iter().enumerate() {
            let s = &self.stages[i];
            let name = stage.name();
            let family = format!("isobar_stage_{name}_duration_seconds");
            out.push_str(&format!(
                "# HELP {family} Wall time of {name} pipeline spans.\n\
                 # TYPE {family} summary\n\
                 {family}{{quantile=\"0\"}} {}\n\
                 {family}{{quantile=\"1\"}} {}\n\
                 {family}_sum {}\n\
                 {family}_count {}\n",
                secs(s.min_nanos),
                secs(s.max_nanos),
                secs(s.total_nanos),
                s.count
            ));
        }

        out.push_str(
            "# HELP isobar_tau_margin Distribution of analyzer tau margins \
             (distance of each byte-column frequency from the tau threshold).\n\
             # TYPE isobar_tau_margin histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, &count) in self.tau_margin.iter().enumerate() {
            cumulative = cumulative.saturating_add(count);
            if i + 1 < HISTOGRAM_BUCKETS {
                out.push_str(&format!(
                    "isobar_tau_margin_bucket{{le=\"{:.2}\"}} {cumulative}\n",
                    (i + 1) as f64 * 0.25
                ));
            }
        }
        out.push_str(&format!(
            "isobar_tau_margin_bucket{{le=\"+Inf\"}} {cumulative}\n\
             isobar_tau_margin_sum 0\n\
             isobar_tau_margin_count {cumulative}\n"
        ));

        let eupa_family =
            |out: &mut String, family: &str, help: &str, values: &[u64], seconds: bool| {
                out.push_str(&format!(
                    "# HELP {family} {help}\n# TYPE {family} counter\n"
                ));
                for (name, &value) in EUPA_COMBOS.iter().zip(values) {
                    if seconds {
                        out.push_str(&format!("{family}{{combo=\"{name}\"}} {}\n", secs(value)));
                    } else {
                        out.push_str(&format!("{family}{{combo=\"{name}\"}} {value}\n"));
                    }
                }
            };
        eupa_family(
            &mut out,
            "isobar_eupa_selected_total",
            "Times EUPA selected each codec x linearization combination.",
            &self.eupa_selected,
            false,
        );
        eupa_family(
            &mut out,
            "isobar_eupa_trials_total",
            "EUPA trial compressions run per combination.",
            &self.eupa_trial_count,
            false,
        );
        eupa_family(
            &mut out,
            "isobar_eupa_trial_seconds_total",
            "Wall time spent trial-compressing each combination.",
            &self.eupa_trial_nanos,
            true,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_buckets_cover_the_line() {
        assert_eq!(margin_bucket(-1.0), 0);
        assert_eq!(margin_bucket(0.0), 0);
        assert_eq!(margin_bucket(0.1), 0);
        assert_eq!(margin_bucket(0.25), 1);
        assert_eq!(margin_bucket(1.0), 4);
        assert_eq!(margin_bucket(3.74), 14);
        assert_eq!(margin_bucket(3.75), 15);
        assert_eq!(margin_bucket(1e9), 15);
        assert_eq!(margin_bucket(f64::NAN), 0);
    }

    #[test]
    fn stage_stats_merge_handles_empty_sides() {
        let mut a = StageStats::default();
        let mut b = StageStats::default();
        b.record(10);
        b.record(30);
        a.merge(&b);
        assert_eq!(a, b);
        let empty = StageStats::default();
        a.merge(&empty);
        assert_eq!(a, b);
        assert_eq!(a.mean_nanos(), 20);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut snap = TelemetrySnapshot::default();
        for (i, slot) in snap.counters.iter_mut().enumerate() {
            *slot = (i as u64 + 1) * 7;
        }
        for (i, stage) in snap.stages.iter_mut().enumerate() {
            stage.record((i as u64 + 1) * 1000);
            stage.record((i as u64 + 1) * 3000);
        }
        for (i, slot) in snap.tau_margin.iter_mut().enumerate() {
            *slot = i as u64;
        }
        snap.eupa_selected = [1, 0, 0, 2];
        snap.eupa_trial_count = [4, 4, 4, 4];
        snap.eupa_trial_nanos = [11, 22, 33, 44];

        let json = snap.to_json();
        let back = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn json_output_is_byte_stable() {
        let mut snap = TelemetrySnapshot::default();
        snap.counters[0] = 5;
        assert_eq!(snap.to_json(), snap.clone().to_json());
        // Key order is the declaration order of the enums, not hash order.
        let json = snap.to_json();
        let chunks_pos = json.find("\"analyzer_chunks\"").unwrap();
        let bytes_pos = json.find("\"analyzer_bytes\"").unwrap();
        assert!(chunks_pos < bytes_pos);
    }

    #[test]
    fn from_json_rejects_other_schema_versions() {
        assert!(TelemetrySnapshot::from_json("{\"schema_version\": 2}").is_err());
        assert!(TelemetrySnapshot::from_json("{}").is_err());
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = TelemetrySnapshot::default();
        a.counters[3] = 10;
        a.stages[1].record(100);
        a.tau_margin[2] = 4;
        let mut b = TelemetrySnapshot::default();
        b.counters[3] = 5;
        b.counters[7] = 9;
        b.stages[1].record(50);
        b.eupa_selected[0] = 1;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters[3], 15);
        assert_eq!(ab.stages[1].count, 2);
        assert_eq!(ab.stages[1].min_nanos, 50);
        assert_eq!(ab.stages[1].max_nanos, 100);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        // Regression: release builds wrap on `+`, so a near-full
        // counter merged with another would silently reset to ~0.
        let mut a = TelemetrySnapshot::default();
        a.counters[0] = u64::MAX - 1;
        a.tau_margin[0] = u64::MAX;
        a.eupa_selected[0] = u64::MAX;
        a.eupa_trial_count[0] = u64::MAX;
        a.eupa_trial_nanos[0] = u64::MAX;
        a.stages[0] = StageStats {
            count: u64::MAX,
            total_nanos: u64::MAX,
            min_nanos: 1,
            max_nanos: 9,
        };
        let mut b = TelemetrySnapshot::default();
        b.counters[0] = 5;
        b.tau_margin[0] = 5;
        b.eupa_selected[0] = 5;
        b.eupa_trial_count[0] = 5;
        b.eupa_trial_nanos[0] = 5;
        b.stages[0] = StageStats {
            count: 3,
            total_nanos: 3,
            min_nanos: 2,
            max_nanos: 4,
        };

        a.merge(&b);
        assert_eq!(a.counters[0], u64::MAX);
        assert_eq!(a.tau_margin[0], u64::MAX);
        assert_eq!(a.eupa_selected[0], u64::MAX);
        assert_eq!(a.eupa_trial_count[0], u64::MAX);
        assert_eq!(a.eupa_trial_nanos[0], u64::MAX);
        assert_eq!(a.stages[0].count, u64::MAX);
        assert_eq!(a.stages[0].total_nanos, u64::MAX);
        assert_eq!(a.stages[0].min_nanos, 1);
        assert_eq!(a.stages[0].max_nanos, 9);
    }

    #[test]
    fn prometheus_families_are_complete_and_well_formed() {
        let mut snap = TelemetrySnapshot::default();
        snap.counters[0] = 42;
        snap.stages[0].record(1_500);
        snap.tau_margin[1] = 3;
        snap.eupa_selected = [1, 0, 0, 0];
        let text = snap.to_prometheus();

        // Every counter and stage surfaces as its own family with both
        // header lines; the histogram's buckets are cumulative.
        for counter in Counter::ALL {
            let family = format!("isobar_{}_total", counter.name());
            assert!(text.contains(&format!("# HELP {family} ")), "{family}");
            assert!(text.contains(&format!("# TYPE {family} counter\n")));
            assert!(text.contains(&format!("\n{family} ")));
        }
        for stage in Stage::ALL {
            let family = format!("isobar_stage_{}_duration_seconds", stage.name());
            assert!(text.contains(&format!("# TYPE {family} summary\n")));
            assert!(text.contains(&format!("{family}_count ")));
            assert!(text.contains(&format!("{family}_sum ")));
        }
        assert!(text.contains("# TYPE isobar_tau_margin histogram"));
        assert!(text.contains("isobar_tau_margin_bucket{le=\"0.25\"} 0"));
        assert!(text.contains("isobar_tau_margin_bucket{le=\"0.50\"} 3"));
        assert!(text.contains("isobar_tau_margin_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("isobar_eupa_selected_total{combo=\"zlib_row\"} 1"));
        // Exposition format: every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.rsplitn(2, ' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn render_table_mentions_nonzero_rows_only() {
        let mut snap = TelemetrySnapshot::default();
        snap.counters[Counter::ChunksCompressed as usize] = 3;
        let table = snap.render_table();
        assert!(table.contains("chunks_compressed"));
        assert!(!table.contains("store_puts"));
    }
}
