//! ISOBAR-analyzer: byte-column compressibility classification (§II.A).
//!
//! For each of the ω byte-columns of an `N × ω` element matrix the
//! analyzer builds a 256-bin value histogram. A column is
//! *incompressible* (noise) when **every** bin stays at or below the
//! tolerance `τ·N/256`: no byte value is frequent enough for entropy
//! coding to exploit. The paper fixes τ = 1.42 after observing that
//! compression-ratio improvements are stable for τ ∈ [1.4, 1.5].

use crate::error::IsobarError;
use isobar_telemetry::{Counter, Recorder};

/// The paper's tolerance factor (§II.A).
pub const DEFAULT_TAU: f64 = 1.42;

/// Per-column classification produced by the analyzer: `true` means the
/// column is compressible (signal), `false` incompressible (noise).
/// This is the paper's output array S with 1 = compressible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSelection {
    bits: Vec<bool>,
}

impl ColumnSelection {
    /// Wrap a per-column bit vector (index = byte-column).
    pub fn new(bits: Vec<bool>) -> Self {
        ColumnSelection { bits }
    }

    /// Element width ω.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Per-column bits, index = byte-column, `true` = compressible.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Indices of compressible columns.
    pub fn compressible(&self) -> Vec<usize> {
        (0..self.bits.len()).filter(|&c| self.bits[c]).collect()
    }

    /// Indices of incompressible columns.
    pub fn incompressible(&self) -> Vec<usize> {
        (0..self.bits.len()).filter(|&c| !self.bits[c]).collect()
    }

    /// Percentage of hard-to-compress (incompressible) bytes —
    /// Table IV's "HTC Bytes (%)".
    pub fn htc_pct(&self) -> f64 {
        if self.bits.is_empty() {
            return 0.0;
        }
        self.incompressible().len() as f64 / self.bits.len() as f64 * 100.0
    }

    /// The partitioner's classification (§II.B): a dataset is
    /// *improvable* unless the selection is all-0 or all-1.
    pub fn is_improvable(&self) -> bool {
        let ones = self.bits.iter().filter(|&&b| b).count();
        ones != 0 && ones != self.bits.len()
    }

    /// Pack into a bitmask for container metadata (bit c = column c).
    ///
    /// Errors on selections wider than 64 columns — `1u64 << c` would
    /// overflow the shift (a panic in debug builds, silent wraparound
    /// in release) and the container's mask field is a fixed `u64`.
    pub fn to_mask(&self) -> Result<u64, IsobarError> {
        if self.bits.len() > 64 {
            return Err(IsobarError::BadWidth(self.bits.len()));
        }
        Ok(self
            .bits
            .iter()
            .enumerate()
            .fold(0u64, |m, (c, &b)| if b { m | (1 << c) } else { m }))
    }

    /// Unpack from a container bitmask. Errors on widths > 64 for the
    /// same shift-overflow reason as [`ColumnSelection::to_mask`].
    pub fn from_mask(mask: u64, width: usize) -> Result<Self, IsobarError> {
        if width > 64 {
            return Err(IsobarError::BadWidth(width));
        }
        Ok(ColumnSelection {
            bits: (0..width).map(|c| mask & (1 << c) != 0).collect(),
        })
    }
}

/// The ISOBAR-analyzer.
#[derive(Debug, Clone, Copy)]
pub struct Analyzer {
    tau: f64,
    /// Histogram kernel tier, resolved once at construction.
    tier: isobar_simd::KernelTier,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer {
            tau: DEFAULT_TAU,
            tier: isobar_simd::active_tier(),
        }
    }
}

impl Analyzer {
    /// Create an analyzer with a custom tolerance factor τ ∈ (0, 256].
    ///
    /// Lower τ lowers the bar for "compressible": as τ → 0 every
    /// column passes; at τ = 256 the tolerance equals N, which not even
    /// a constant column exceeds, so everything reads incompressible.
    pub fn with_tau(tau: f64) -> Self {
        assert!(tau > 0.0 && tau <= 256.0, "tau must be in (0, 256]");
        Analyzer {
            tau,
            tier: isobar_simd::active_tier(),
        }
    }

    /// The configured tolerance factor.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Classify every byte-column of `data` (`N` elements of `width`
    /// bytes).
    ///
    /// # Example
    ///
    /// ```
    /// use isobar::Analyzer;
    ///
    /// // 4-byte elements: a constant column, a small-alphabet column,
    /// // and two pseudo-random (noise) columns.
    /// let mut state = 0x9E3779B97F4A7C15u64;
    /// let data: Vec<u8> = (0..50_000u32)
    ///     .flat_map(|i| {
    ///         state ^= state << 13;
    ///         state ^= state >> 7;
    ///         state ^= state << 17;
    ///         [0x42, (i % 10) as u8, (state >> 48) as u8, (state >> 56) as u8]
    ///     })
    ///     .collect();
    ///
    /// let selection = Analyzer::default().analyze(&data, 4)?;
    /// assert_eq!(selection.bits(), &[true, true, false, false]);
    /// assert_eq!(selection.htc_pct(), 50.0);
    /// assert!(selection.is_improvable());
    /// # Ok::<(), isobar::IsobarError>(())
    /// ```
    pub fn analyze(&self, data: &[u8], width: usize) -> Result<ColumnSelection, IsobarError> {
        let (hists, tolerance) = self.fill_histograms(data, width)?;
        let bits = hists
            .iter()
            .map(|hist| hist.iter().any(|&count| count as f64 > tolerance))
            .collect();
        Ok(ColumnSelection::new(bits))
    }

    /// [`Analyzer::analyze`], additionally recording per-column
    /// frequency-test outcomes and the τ-margin distribution.
    ///
    /// The *τ-margin* of a column is its peak combined bin count
    /// divided by the tolerance `τ·N/256`: margins above 1 pass the
    /// frequency test (compressible), margins below fail. The recorded
    /// histogram shows how far a dataset sits from the τ decision
    /// boundary — the empirical basis for the paper's claim that
    /// results are stable for τ ∈ [1.4, 1.5].
    ///
    /// Classification is bit-identical to [`Analyzer::analyze`]; in the
    /// telemetry-off build the margin scan is skipped entirely and this
    /// *is* `analyze`.
    pub fn analyze_recorded(
        &self,
        data: &[u8],
        width: usize,
        recorder: &mut Recorder,
    ) -> Result<ColumnSelection, IsobarError> {
        if !isobar_telemetry::ENABLED {
            return self.analyze(data, width);
        }
        let (hists, tolerance) = self.fill_histograms(data, width)?;
        let mut bits = Vec::with_capacity(width);
        for hist in &hists {
            // `max > tolerance` ⇔ `any bin > tolerance`: same verdict
            // as analyze(), but the peak also yields the margin.
            let peak = hist.iter().copied().max().unwrap_or(0);
            let compressible = peak as f64 > tolerance;
            if tolerance > 0.0 {
                recorder.record_tau_margin(peak as f64 / tolerance);
            }
            recorder.incr(if compressible {
                Counter::ColumnsCompressible
            } else {
                Counter::ColumnsIncompressible
            });
            bits.push(compressible);
        }
        recorder.incr(Counter::AnalyzerChunks);
        recorder.add(Counter::AnalyzerBytes, data.len() as u64);
        Ok(ColumnSelection::new(bits))
    }

    /// The shared histogram pass: one 256-bin histogram per column,
    /// plus the tolerance `τ·N/256` they are judged against. Counting
    /// runs on the dispatched `isobar-simd` kernel (block-transposed
    /// multi-bank accumulation on SIMD tiers, dual-bank scalar
    /// otherwise); counts are exact either way, so classification is
    /// bit-identical across tiers.
    fn fill_histograms(
        &self,
        data: &[u8],
        width: usize,
    ) -> Result<(Vec<[u32; 256]>, f64), IsobarError> {
        if width == 0 || width > 64 {
            return Err(IsobarError::BadWidth(width));
        }
        if !data.len().is_multiple_of(width) {
            return Err(IsobarError::MisalignedInput {
                len: data.len(),
                width,
            });
        }
        let n = data.len() / width;
        let tolerance = self.tau * n as f64 / 256.0;
        let mut hists = Vec::new();
        isobar_simd::hist::byte_column_histograms(self.tier, data, width, &mut hists);
        Ok((hists, tolerance))
    }

    /// Analysis throughput helper: classify and report wall time — the
    /// paper's TP_A column (Table V) measures exactly this pass.
    pub fn analyze_timed(
        &self,
        data: &[u8],
        width: usize,
    ) -> Result<(ColumnSelection, std::time::Duration), IsobarError> {
        let start = std::time::Instant::now();
        let sel = self.analyze(data, width)?;
        Ok((sel, start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n elements of width 4: col 0 constant, col 1 uniform random,
    /// col 2 binary, col 3 mildly skewed.
    fn mixed_data(n: usize) -> Vec<u8> {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut out = Vec::with_capacity(n * 4);
        for i in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            out.push(7); // constant
            out.push((state >> 24) as u8); // uniform
            out.push((i % 2) as u8); // two values
                                     // Spiked: 10% a fixed value, else uniform.
            let skewed = if state.is_multiple_of(10) {
                0x42
            } else {
                (state >> 32) as u8
            };
            out.push(skewed);
        }
        out
    }

    #[test]
    fn classifies_constant_uniform_and_skewed_columns() {
        let data = mixed_data(100_000);
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        assert_eq!(sel.bits(), &[true, false, true, true]);
        assert_eq!(sel.compressible(), vec![0, 2, 3]);
        assert_eq!(sel.incompressible(), vec![1]);
        assert_eq!(sel.htc_pct(), 25.0);
        assert!(sel.is_improvable());
    }

    #[test]
    fn all_uniform_is_not_improvable() {
        let mut state = 3u64;
        let data: Vec<u8> = (0..400_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        assert_eq!(sel.bits(), &[false; 4]);
        assert!(!sel.is_improvable());
        assert_eq!(sel.htc_pct(), 100.0);
    }

    #[test]
    fn all_constant_is_not_improvable() {
        let data = vec![9u8; 4000];
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        assert_eq!(sel.bits(), &[true; 4]);
        assert!(!sel.is_improvable());
        assert_eq!(sel.htc_pct(), 0.0);
    }

    #[test]
    fn tau_extremes_flip_the_classification() {
        let data = mixed_data(100_000);
        // τ = 256: the tolerance equals N, which no bin can exceed —
        // every column reads incompressible.
        let none = Analyzer::with_tau(256.0).analyze(&data, 4).unwrap();
        assert_eq!(none.bits(), &[false, false, false, false]);
        // τ near 0: any nonzero bin clears the tolerance — every
        // column reads compressible.
        let all = Analyzer::with_tau(0.0001).analyze(&data, 4).unwrap();
        assert_eq!(all.bits(), &[true, true, true, true]);
        // τ in the paper's band behaves as in the first test — covered
        // there. Here check a larger band is stable (τ∈[1.4,1.5]).
        for tau in [1.40, 1.42, 1.45, 1.50] {
            let sel = Analyzer::with_tau(tau).analyze(&data, 4).unwrap();
            assert_eq!(sel.bits(), &[true, false, true, true], "tau {tau}");
        }
    }

    #[test]
    fn misaligned_input_is_rejected() {
        let err = Analyzer::default().analyze(&[0u8; 10], 4).unwrap_err();
        assert!(matches!(
            err,
            IsobarError::MisalignedInput { len: 10, width: 4 }
        ));
    }

    #[test]
    fn silly_widths_are_rejected() {
        assert!(matches!(
            Analyzer::default().analyze(&[], 0),
            Err(IsobarError::BadWidth(0))
        ));
        assert!(matches!(
            Analyzer::default().analyze(&[0u8; 130], 65),
            Err(IsobarError::BadWidth(65))
        ));
    }

    #[test]
    fn empty_input_classifies_all_compressible_vacuously() {
        // No element exceeds a zero tolerance, so all columns read as
        // incompressible... except there are no counts at all. The
        // convention: empty input → all incompressible → undetermined,
        // and the pipeline just passes it through.
        let sel = Analyzer::default().analyze(&[], 8).unwrap();
        assert_eq!(sel.width(), 8);
        assert!(!sel.is_improvable());
    }

    #[test]
    fn mask_round_trips() {
        let sel = ColumnSelection::new(vec![true, false, true, true, false, false, true, false]);
        let mask = sel.to_mask().unwrap();
        assert_eq!(mask, 0b0100_1101);
        assert_eq!(ColumnSelection::from_mask(mask, 8).unwrap(), sel);
    }

    #[test]
    fn mask_round_trips_at_full_width() {
        // Width 64 exercises the `1 << 63` edge without overflowing.
        let bits: Vec<bool> = (0..64).map(|c| c % 3 == 0 || c == 63).collect();
        let sel = ColumnSelection::new(bits);
        let mask = sel.to_mask().unwrap();
        assert_ne!(mask & (1 << 63), 0);
        assert_eq!(ColumnSelection::from_mask(mask, 64).unwrap(), sel);
    }

    #[test]
    fn mask_rejects_overwide_selections() {
        let sel = ColumnSelection::new(vec![true; 65]);
        assert!(matches!(sel.to_mask(), Err(IsobarError::BadWidth(65))));
        assert!(matches!(
            ColumnSelection::from_mask(0, 65),
            Err(IsobarError::BadWidth(65))
        ));
    }

    #[test]
    fn recorded_analysis_matches_plain_and_counts_columns() {
        let data = mixed_data(100_000);
        let mut rec = Recorder::new();
        let plain = Analyzer::default().analyze(&data, 4).unwrap();
        let recorded = Analyzer::default()
            .analyze_recorded(&data, 4, &mut rec)
            .unwrap();
        assert_eq!(plain, recorded);
        let snap = rec.snapshot();
        if isobar_telemetry::ENABLED {
            assert_eq!(snap.counter(Counter::ColumnsCompressible), 3);
            assert_eq!(snap.counter(Counter::ColumnsIncompressible), 1);
            assert_eq!(snap.counter(Counter::AnalyzerChunks), 1);
            assert_eq!(snap.counter(Counter::AnalyzerBytes), data.len() as u64);
            // One margin sample per column; the constant column's
            // margin (N vs τ·N/256) lands in the open-ended top bucket,
            // the uniform column's (≈1/τ) well below 1.
            assert_eq!(snap.tau_margin.iter().sum::<u64>(), 4);
            assert!(snap.tau_margin[15] >= 1);
        } else {
            assert!(snap.is_empty());
        }
    }

    #[test]
    fn analysis_is_fast_relative_to_compression() {
        // TP_A in the paper is ~500 MB/s on 2012 hardware; just assert
        // the pass is single-digit-milliseconds per MB here (debug
        // builds are slow, so the bound is loose).
        let data = mixed_data(250_000); // 1 MB
        let (_, elapsed) = Analyzer::default().analyze_timed(&data, 4).unwrap();
        assert!(elapsed.as_secs_f64() < 1.0, "{elapsed:?}");
    }
}
