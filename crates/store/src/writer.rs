//! Appending store writer with a crash-consistent commit protocol.
//!
//! # Commit protocol
//!
//! A store is written to a shadow file — `<path>.wip`, the intent
//! journal — and only takes the final name at the very end:
//!
//! 1. records append to `<path>.wip` as variables arrive;
//! 2. `close` fsyncs the data region, so every record the index will
//!    reference is durable before the index exists;
//! 3. the checksummed index and trailer are appended and fsynced;
//! 4. `<path>.wip` is atomically renamed to `<path>`;
//! 5. the parent directory is fsynced, making the rename durable.
//!
//! A crash before step 4 leaves at most a `.wip` file, which no reader
//! opens; a crash after it leaves a complete, verified store. The
//! rename is the commit point — a reader at `<path>` sees the old
//! store or the new store, never a torn one. The crash-injection
//! harness in `isobar-fuzz-harness` proves this by killing the writer
//! at every operation boundary (including torn in-flight writes) and
//! opening what survives.
//!
//! A [`StoreWriter`] dropped before [`StoreWriter::close`] removes its
//! `.wip` file: an abandoned write must not leave droppings that a
//! later commit could trip over.

use crate::error::StoreError;
use crate::format::{entry_checksum, IndexEntry, CHECKSUM_SEED, MAGIC, TRAILER_MAGIC, VERSION};
use crate::vfs::{RealFs, StoreFile, StoreFs};
use isobar::telemetry::Counter;
use isobar::{IsobarCompressor, IsobarOptions, PipelineScratch, Recorder, TelemetrySnapshot};
use isobar_codecs::xxhash::xxh64;
use std::collections::HashSet;
use std::ffi::OsString;
use std::path::{Path, PathBuf};

/// Writes a checkpoint store file, compressing each variable through
/// the ISOBAR pipeline as it arrives.
///
/// Records are appended in arrival order; the index and trailer are
/// written by [`StoreWriter::close`], which also commits the file to
/// its final name (see the module docs for the full protocol). A store
/// that was never closed is invisible to readers — half-written
/// checkpoints must not be restorable by accident.
///
/// The filesystem is pluggable ([`StoreFs`]) so the crash harness can
/// substitute a fault-injecting one; production code uses the
/// [`RealFs`] default and never sees the parameter.
pub struct StoreWriter<F: StoreFs = RealFs> {
    fs: F,
    file: Option<F::File>,
    final_path: PathBuf,
    wip_path: PathBuf,
    committed: bool,
    compressor: IsobarCompressor,
    /// Pipeline working memory, warm across every `put` call.
    scratch: PipelineScratch,
    index: Vec<IndexEntry>,
    seen: HashSet<(u32, String)>,
    offset: u64,
    /// Telemetry accumulated across every `put` on this store.
    recorder: Recorder,
}

/// The shadow-file name records are journaled into before commit.
pub fn wip_path(path: &Path) -> PathBuf {
    let mut name = OsString::from(path.as_os_str());
    name.push(".wip");
    PathBuf::from(name)
}

impl StoreWriter<RealFs> {
    /// Create a store that will commit to `path` on close.
    pub fn create(path: impl AsRef<Path>, options: IsobarOptions) -> Result<Self, StoreError> {
        Self::create_in(RealFs, path, options)
    }
}

impl<F: StoreFs> StoreWriter<F> {
    /// [`StoreWriter::create`] on an explicit filesystem.
    pub fn create_in(
        fs: F,
        path: impl AsRef<Path>,
        options: IsobarOptions,
    ) -> Result<Self, StoreError> {
        let final_path = path.as_ref().to_path_buf();
        let wip = wip_path(&final_path);
        let mut file = fs.create(&wip)?;
        file.write_all(&MAGIC)?;
        file.write_all(&[VERSION])?;
        Ok(StoreWriter {
            fs,
            file: Some(file),
            final_path,
            wip_path: wip,
            committed: false,
            compressor: IsobarCompressor::new(options),
            scratch: PipelineScratch::new(),
            index: Vec::new(),
            seen: HashSet::new(),
            offset: (MAGIC.len() + 1) as u64,
            recorder: Recorder::new(),
        })
    }

    /// Compress and append one variable for one time step.
    ///
    /// `data` must be a whole number of `width`-byte elements. Each
    /// `(step, name)` pair may be written once.
    pub fn put(
        &mut self,
        step: u32,
        name: &str,
        data: &[u8],
        width: usize,
    ) -> Result<&IndexEntry, StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::NameTooLong(name.len()));
        }
        if !self.seen.insert((step, name.to_string())) {
            return Err(StoreError::Duplicate {
                step,
                name: name.to_string(),
            });
        }
        let _span = isobar::trace::span(isobar::trace::TraceTag::StorePut, isobar::trace::NO_CHUNK);
        let container = self.compressor.compress_recorded(
            data,
            width,
            &mut self.scratch,
            &mut self.recorder,
        )?;
        self.recorder.incr(Counter::StorePuts);
        self.recorder.add(Counter::StoreRawBytes, data.len() as u64);
        self.recorder
            .add(Counter::StoreContainerBytes, container.len() as u64);
        self.append_record(step, name, width as u8, &container, data.len() as u64)?;
        Ok(self.index.last().expect("just pushed"))
    }

    /// Append an already-compressed container as one record. The
    /// salvage path uses this to copy intact records between stores
    /// without a decompress/recompress round trip.
    pub(crate) fn put_container(
        &mut self,
        step: u32,
        name: &str,
        width: u8,
        container: &[u8],
        raw_len: u64,
    ) -> Result<(), StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::NameTooLong(name.len()));
        }
        if !self.seen.insert((step, name.to_string())) {
            return Err(StoreError::Duplicate {
                step,
                name: name.to_string(),
            });
        }
        self.append_record(step, name, width, container, raw_len)
    }

    fn append_record(
        &mut self,
        step: u32,
        name: &str,
        width: u8,
        container: &[u8],
        raw_len: u64,
    ) -> Result<(), StoreError> {
        let file = self.file.as_mut().expect("file open until close");
        let name_bytes = name.as_bytes();
        file.write_all(&(name_bytes.len() as u16).to_le_bytes())?;
        file.write_all(name_bytes)?;
        file.write_all(&step.to_le_bytes())?;
        file.write_all(&[width])?;
        file.write_all(&(container.len() as u64).to_le_bytes())?;
        let record_header = 2 + name_bytes.len() as u64 + 4 + 1 + 8;
        let container_offset = self.offset + record_header;
        file.write_all(container)?;
        self.offset = container_offset + container.len() as u64;

        self.index.push(IndexEntry {
            name: name.to_string(),
            step,
            width,
            offset: container_offset,
            container_len: container.len() as u64,
            raw_len,
            checksum: entry_checksum(container),
        });
        Ok(())
    }

    /// Entries written so far (in arrival order).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Snapshot of the telemetry recorded so far. The index-byte
    /// accounting only lands once [`StoreWriter::close`] runs; use
    /// [`StoreWriter::close_with_telemetry`] for the complete picture.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    /// Write the checksummed index and trailer, fsync, and commit the
    /// store to its final name (see the module docs).
    pub fn close(self) -> Result<(), StoreError> {
        self.close_with_telemetry().map(|_| ())
    }

    /// [`StoreWriter::close`], also returning the store's complete
    /// telemetry (including index and trailer bytes).
    pub fn close_with_telemetry(mut self) -> Result<TelemetrySnapshot, StoreError> {
        let index_offset = self.offset;
        let mut encoded = Vec::new();
        for entry in &self.index {
            entry.write(&mut encoded);
        }
        {
            let file = self.file.as_mut().expect("file open until close");
            // Journal boundary: every record the index is about to
            // reference must be durable before the index describes it.
            file.sync_data()?;
            file.write_all(&encoded)?;
            file.write_all(&index_offset.to_le_bytes())?;
            file.write_all(&(self.index.len() as u32).to_le_bytes())?;
            file.write_all(&xxh64(&encoded, CHECKSUM_SEED).to_le_bytes())?;
            file.write_all(&TRAILER_MAGIC)?;
            file.sync_data()?;
        }
        // Commit point: close the handle, take the final name, and
        // make the rename durable.
        self.file = None;
        self.fs.rename(&self.wip_path, &self.final_path)?;
        let parent = self.final_path.parent().unwrap_or(Path::new("."));
        self.fs.sync_dir(parent)?;
        self.committed = true;
        self.recorder.add(
            Counter::StoreIndexBytes,
            encoded.len() as u64 + crate::format::TRAILER_LEN as u64,
        );
        Ok(self.recorder.snapshot())
    }
}

impl<F: StoreFs> Drop for StoreWriter<F> {
    fn drop(&mut self) {
        if !self.committed {
            // Close the handle before unlinking, then sweep the
            // journal: an abandoned writer must not leave a partial
            // `.wip` behind. Failures are swallowed — drop runs on
            // error paths where the file may never have existed.
            self.file = None;
            let _ = self.fs.remove_file(&self.wip_path);
        }
    }
}
