//! Crash-injection sweep for the serve daemon's durability contract.
//!
//! `isobar serve` promises ("acked means durable"): once a put's `Ok`
//! response has been written, the payload survives an immediate
//! daemon crash — it is either in a committed generation or in the
//! fsynced write-ahead journal that startup replay restores. This
//! module proves that claim the same way [`crate::crash`] proves the
//! commit protocols: by killing the engine at *every* recorded
//! filesystem-operation boundary and re-opening every admissible
//! post-crash disk state.
//!
//! # What runs under fault injection
//!
//! The daemon's store engine is `isobar_server::StoreCore`, generic
//! over `StoreFs` and factored out of the TCP plumbing precisely so
//! this sweep can drive the byte-identical fs-op sequence a live
//! daemon performs: `store_put` → `wal_append` (the ack barrier) →
//! `overlay_insert`, with a mid-script generation commit and a tail of
//! acked-but-never-committed puts that only the journal protects.
//!
//! # Sweep strategy
//!
//! As in the sharded sweep, the scripted session's operation stream is
//! recorded once and replayed with a kill at each boundary (torn
//! in-flight writes included). A put counts as *acked* at a kill point
//! iff its `wal_append` had returned before the kill boundary — the
//! exact moment a real daemon writes the `Ok` frame. Every post-crash
//! view is materialized to a real directory and re-opened through
//! `StoreCore` on the real filesystem — running genuine startup
//! journal replay — and every acked put must read back bit-exact.
//! Unacked puts may appear or not (the client never saw an ack;
//! re-putting is idempotent), so only the acked direction is asserted.
//! At sampled kill points the real engine runs with an armed budget
//! and its own acked-set is verified the same way.

use crate::crash::{materialize_dir, payload, FaultFs, REAL_RUN_STRIDE};
use crate::rng::Rng;
use isobar::IsobarOptions;
use isobar_server::daemon::store_key;
use isobar_server::{CoreOptions, StoreCore};
use std::collections::BTreeMap;
use std::path::Path;

/// Outcome of one full serve crash sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCrashOutcome {
    /// Operation boundaries the engine was killed at.
    pub kill_points: u64,
    /// Post-crash directory views re-opened and checked.
    pub views_checked: u64,
    /// Acked `(step, key)` entries verified bit-exact, summed over all
    /// views.
    pub acked_verified: u64,
    /// Verifications served from the WAL-replayed overlay — proof the
    /// journal, not just the committed store, carried acked data
    /// through a crash.
    pub overlay_served: u64,
    /// Verifications served from a committed generation.
    pub committed_served: u64,
    /// Kill points where the real armed engine was run and its own
    /// acked-set verified.
    pub real_runs: u64,
}

/// Tenant every scripted put uses.
const TENANT: &str = "crash-tenant";

/// Scripted puts before the mid-script commit.
const PUTS_BEFORE_COMMIT: usize = 7;

/// Scripted puts after the commit — acked but never committed, so the
/// journal alone protects them at the end of the op stream.
const PUTS_AFTER_COMMIT: usize = 5;

/// One scripted put, with the payload needed to verify it later.
#[derive(Debug, Clone)]
struct ScriptPut {
    step: u32,
    /// Bare variable name, as the wire protocol carries it (and as
    /// the journal records it).
    name: String,
    /// Full store key (tenant-prefixed), as the daemon builds it for
    /// the writer and the overlay.
    key: String,
    payload: Vec<u8>,
}

/// The scripted puts, derived from `seed`. Includes a same-key rewrite
/// inside the script (overlay and writer supersede) and a rewrite of a
/// baseline-committed key (cross-generation supersede).
fn script_puts(seed: u64) -> Vec<ScriptPut> {
    let mut rng = Rng::new(seed ^ 0x5E7E_CA11_0000_0002);
    let mut puts = Vec::new();
    for i in 0..(PUTS_BEFORE_COMMIT + PUTS_AFTER_COMMIT) {
        let (step, name) = match i {
            // Rewrite of a key the baseline generation committed.
            2 => (0, "super".to_string()),
            // Same-key rewrite within the script: the second write
            // must win in the overlay, the journal, and the store.
            4 => (1, "v3".to_string()),
            _ => ((i / 3) as u32, format!("v{i}")),
        };
        puts.push(ScriptPut {
            step,
            key: store_key(TENANT, &name),
            name,
            payload: payload(&mut rng, 256),
        });
    }
    puts
}

/// Engine options for the scripted session. The reader stays closed
/// (it maps real files, which a simulated disk cannot serve) and the
/// commit threshold is out of reach — the script commits explicitly.
fn core_opts(open_reader: bool) -> CoreOptions {
    CoreOptions {
        isobar: IsobarOptions::default(),
        shards: 2,
        queue_depth: 2,
        commit_threshold: u64::MAX,
        wal: true,
        open_reader,
    }
}

/// Drive the scripted serve session against `fs`. Returns the puts
/// acked so far — each with the recorded-op count at the moment its
/// ack barrier returned — plus whether the script ran to completion
/// (armed runs die midway; that is their purpose).
fn run_script(
    fs: &FaultFs,
    dir: &Path,
    puts: &[ScriptPut],
) -> (Vec<(ScriptPut, usize)>, Result<(), String>) {
    let mut acked = Vec::new();
    let mut core = match StoreCore::open(fs.clone(), dir, core_opts(false)) {
        Ok(core) => core,
        Err(e) => return (acked, Err(format!("open: {e}"))),
    };
    for (i, put) in puts.iter().enumerate() {
        if let Err(e) = core.store_put(put.step, &put.key, put.payload.clone(), 8) {
            return (acked, Err(format!("store_put {i}: {e}")));
        }
        if let Err(e) = core.wal_append(TENANT, put.step, &put.name, 8, &put.payload) {
            return (acked, Err(format!("wal_append {i}: {e}")));
        }
        // The ack barrier just returned: a real daemon writes `Ok` now.
        // Any kill at or after this op count must preserve the put.
        acked.push((put.clone(), fs.recorded_ops().len()));
        core.overlay_insert(put.step, put.key.clone(), 8, put.payload.clone());
        if i + 1 == PUTS_BEFORE_COMMIT {
            if let Err(e) = core.commit() {
                return (acked, Err(format!("mid-script commit: {e}")));
            }
        }
    }
    // The script ends mid-flight — the writer is dropped un-closed,
    // like a daemon dying between commits. The journal carries the
    // post-commit puts.
    drop(core);
    (acked, Ok(()))
}

/// What a post-crash read of one `(step, key)` may legally return.
struct Admissible {
    /// The key has an acked (or baseline-committed) value, so
    /// `NotFound` after the crash is a durability violation.
    must_exist: bool,
    /// Bit-exact values a read may serve. More than one only when an
    /// *unacked* in-flight journal write raced the crash: the client
    /// never saw an ack for it, so either the prior value or the
    /// in-flight one is admissible (the client re-puts regardless).
    values: Vec<Vec<u8>>,
}

/// Build the admissible read-back map at a given kill point: the
/// baseline's committed content, overlaid by every acked put
/// (last-wins, single admissible value — acked means exactly this),
/// widened by the one put whose ack barrier the kill interrupted.
/// Script puts are strictly sequential, so only the first unacked put
/// can have reached the disk at all.
fn expected_content(
    baseline: &BTreeMap<(u32, String), Vec<u8>>,
    acked: &[(ScriptPut, usize)],
    kill_at: usize,
    in_flight: Option<&ScriptPut>,
) -> BTreeMap<(u32, String), Admissible> {
    let mut expected: BTreeMap<(u32, String), Admissible> = baseline
        .iter()
        .map(|((step, key), value)| {
            (
                (*step, key.clone()),
                Admissible {
                    must_exist: true,
                    values: vec![value.clone()],
                },
            )
        })
        .collect();
    for (put, acked_at) in acked {
        if *acked_at <= kill_at {
            expected.insert(
                (put.step, put.key.clone()),
                Admissible {
                    must_exist: true,
                    values: vec![put.payload.clone()],
                },
            );
        }
    }
    if let Some(put) = in_flight {
        let slot = expected
            .entry((put.step, put.key.clone()))
            .or_insert(Admissible {
                must_exist: false,
                values: Vec::new(),
            });
        slot.values.push(put.payload.clone());
    }
    expected
}

/// Materialize one post-crash view, re-open it through the real
/// engine (running genuine WAL replay), and demand every must-exist
/// entry reads back as one of its admissible values. Returns
/// (overlay_served, committed_served) for the must-exist entries.
fn verify_view(
    view: &BTreeMap<std::path::PathBuf, Vec<u8>>,
    scratch: &Path,
    expected: &BTreeMap<(u32, String), Admissible>,
    kill_at: usize,
    view_index: usize,
) -> Result<(u64, u64), String> {
    use isobar_server::core::GetSource;
    materialize_dir(view, scratch)?;
    let core = StoreCore::open_real(scratch, core_opts(true)).map_err(|e| {
        format!("kill point {kill_at} view {view_index}: post-crash open failed: {e}")
    })?;
    let mut overlay_served = 0u64;
    let mut committed_served = 0u64;
    for ((step, key), want) in expected {
        let source = match core.get(*step, key) {
            Ok((got, source)) => {
                if !want.values.iter().any(|v| v == &got) {
                    return Err(format!(
                        "kill point {kill_at} view {view_index}: put ({step}, {key}) \
                         corrupted after crash ({} bytes, {} admissible values)",
                        got.len(),
                        want.values.len()
                    ));
                }
                source
            }
            // Absence of a never-acked put is fine.
            Err(_) if !want.must_exist => continue,
            Err(e) => {
                return Err(format!(
                    "kill point {kill_at} view {view_index}: acked put ({step}, {key}) \
                     lost after crash: {e}"
                ));
            }
        };
        if want.must_exist {
            match source {
                GetSource::Overlay => overlay_served += 1,
                GetSource::Committed => committed_served += 1,
            }
        }
    }
    Ok((overlay_served, committed_served))
}

/// Kill the serve store engine at every operation boundary of a
/// scripted session — puts, a mid-script generation commit, more puts,
/// then an un-closed drop — and prove that every put whose ack barrier
/// had returned reads back bit-exact from every admissible post-crash
/// disk state, through genuine startup journal replay.
///
/// Deterministic in `seed`. Returns the sweep outcome or the first
/// violation, formatted with enough detail to replay.
pub fn serve_crash_sweep(seed: u64) -> Result<ServeCrashOutcome, String> {
    let dir = Path::new("serve.store");
    let scratch = std::env::temp_dir().join(format!(
        "isobar-serve-crash-{}-{seed:016x}",
        std::process::id()
    ));
    let puts = script_puts(seed);

    // Baseline: a generation committed cleanly before the session
    // under test, holding one key the script never touches and one it
    // supersedes.
    let base = FaultFs::new();
    {
        let mut rng = Rng::new(seed ^ 0xBA5E_11E0_0000_0001);
        let mut core = StoreCore::open(base.clone(), dir, core_opts(false))
            .map_err(|e| format!("baseline open: {e}"))?;
        for name in ["keep", "super"] {
            let key = store_key(TENANT, name);
            let data = payload(&mut rng, 256);
            core.store_put(0, &key, data.clone(), 8)
                .map_err(|e| format!("baseline put {name}: {e}"))?;
            core.wal_append(TENANT, 0, name, 8, &data)
                .map_err(|e| format!("baseline journal {name}: {e}"))?;
            core.overlay_insert(0, key, 8, data);
        }
        core.commit()
            .map_err(|e| format!("baseline commit: {e}"))?
            .ok_or("baseline commit was empty")?;
    }
    let committed = base
        .crash_dir_views()
        .into_iter()
        .next()
        .ok_or("baseline commit left no committed view")?;
    materialize_dir(&committed, &scratch)?;
    let baseline = crate::crash::logical_content(&scratch)
        .map_err(|e| format!("baseline generation unreadable: {e}"))?;
    if baseline.len() != 2 {
        return Err(format!("baseline holds {} keys, expected 2", baseline.len()));
    }
    let base = base.fork(); // clear the baseline's op record

    // Record the scripted session's full operation stream once.
    let recorder = base.fork();
    let (acked, completed) = run_script(&recorder, dir, &puts);
    completed.map_err(|e| format!("recording run failed: {e}"))?;
    if acked.len() != puts.len() {
        return Err(format!(
            "recording run acked {} of {} puts",
            acked.len(),
            puts.len()
        ));
    }
    let ops = recorder.recorded_ops();

    let mut outcome = ServeCrashOutcome {
        kill_points: 0,
        views_checked: 0,
        acked_verified: 0,
        overlay_served: 0,
        committed_served: 0,
        real_runs: 0,
    };
    let mut torn_rng = Rng::new(seed ^ 0xC4A5_11F1_5E7E_D000);

    for kill_at in 0..ops.len() {
        let torn_seed = torn_rng.next_u64();
        let fs = FaultFs::replay_killed(&base, &ops, kill_at, torn_seed);
        // The first put whose ack barrier had not yet returned is the
        // only one whose journal bytes can have (partially) landed.
        let in_flight = acked
            .iter()
            .find(|(_, acked_at)| *acked_at > kill_at)
            .map(|(put, _)| put);
        let expected = expected_content(&baseline, &acked, kill_at, in_flight);
        outcome.kill_points += 1;
        for (view_index, view) in fs.crash_dir_views().into_iter().enumerate() {
            let (overlay, committed) =
                verify_view(&view, &scratch, &expected, kill_at, view_index)?;
            outcome.views_checked += 1;
            outcome.acked_verified += overlay + committed;
            outcome.overlay_served += overlay;
            outcome.committed_served += committed;
        }

        // At sampled points (and both ends), run the real engine with
        // an armed budget. Its shard threads interleave on their own
        // schedule, so its acked-set is its own — verified against its
        // own post-crash disk, not the replay's. A budget landing in
        // the final un-closed drop may miss entirely (the drop's
        // cleanup op count varies with thread scheduling); a survived
        // run is then verified with every put acked.
        if kill_at % REAL_RUN_STRIDE == 0 || kill_at == ops.len() - 1 {
            let real = base.fork();
            real.arm(kill_at as u64, torn_seed);
            let (real_acked, completed) = run_script(&real, dir, &puts);
            if completed.is_err() && !real.crashed() {
                return Err(format!(
                    "kill point {kill_at}: scripted session failed before the armed \
                     crash fired"
                ));
            }
            let expected =
                expected_content(&baseline, &real_acked, usize::MAX, puts.get(real_acked.len()));
            for (view_index, view) in real.crash_dir_views().into_iter().enumerate() {
                verify_view(&view, &scratch, &expected, kill_at, view_index)?;
            }
            outcome.real_runs += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    // A sweep whose acked puts were all served by committed
    // generations never exercised journal replay (or vice versa) —
    // demand both, plus kills that actually had acked puts at stake.
    if outcome.overlay_served == 0 || outcome.committed_served == 0 {
        return Err(format!(
            "degenerate serve sweep: {} overlay-served, {} committed-served — \
             kills missed the journal or the commit",
            outcome.overlay_served, outcome.committed_served
        ));
    }
    if outcome.acked_verified == 0 {
        return Err("degenerate serve sweep: no acked put was ever at stake".into());
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_crash_sweep_smoke() {
        // The full sweep runs in CI; the smoke test proves the
        // plumbing end-to-end on the default seed.
        let outcome = serve_crash_sweep(0xD00D_F00D_0000_0001).expect("sweep must hold");
        assert!(outcome.kill_points >= 90, "{outcome:?}");
        assert!(outcome.overlay_served > 0, "{outcome:?}");
        assert!(outcome.committed_served > 0, "{outcome:?}");
        assert!(outcome.real_runs >= 2, "{outcome:?}");
    }
}
