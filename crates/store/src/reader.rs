//! Random-access store reader.

use crate::error::StoreError;
use crate::format::{
    entry_checksum, trailer_len, IndexEntry, CHECKSUM_SEED, LEGACY_VERSION, MAGIC, MIN_ENTRY_LEN,
    TRAILER_MAGIC, VERSION,
};
use isobar::telemetry::Counter;
use isobar::{IsobarCompressor, IsobarOptions, Recorder};
use isobar_codecs::xxhash::xxh64;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Mutex;

/// Reads a closed checkpoint store with per-variable random access.
#[derive(Debug)]
pub struct StoreReader {
    file: Mutex<File>,
    index: Vec<IndexEntry>,
    version: u8,
    verify: bool,
}

impl StoreReader {
    /// Open a store and load its index, with integrity verification on
    /// (the default — see [`StoreReader::open_with_verify`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_verify(path, true)
    }

    /// Open a store and load its index.
    ///
    /// Every untrusted field is validated before it drives an
    /// allocation or a seek: the trailer must fit inside the file, the
    /// claimed entry count must fit inside the index region (each
    /// serialized entry is at least [`MIN_ENTRY_LEN`] bytes), and every
    /// entry's `[offset, offset + container_len)` range must lie inside
    /// the data region.
    ///
    /// With `verify` on (the default via [`StoreReader::open`]), a
    /// version-2 index additionally has its XXH64 checked against the
    /// trailer before any entry is parsed, and every
    /// [`StoreReader::get`] checks the fetched container's XXH64
    /// against its index entry. Mismatches surface as
    /// [`StoreError::ChecksumMismatch`]. Version-1 stores carry no
    /// checksums and are read structurally either way.
    pub fn open_with_verify(path: impl AsRef<Path>, verify: bool) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        let head_len = (MAGIC.len() + 1) as u64;
        // Every version needs at least a head and the smaller (v1)
        // trailer; the version-specific bound is rechecked below.
        if file_len < head_len + crate::format::TRAILER_V1_LEN as u64 {
            return Err(StoreError::Corrupt("file too short for a store"));
        }

        let mut head = [0u8; 5];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if head[..4] != MAGIC {
            return Err(StoreError::Corrupt("bad store magic"));
        }
        let version = head[4];
        if version != VERSION && version != LEGACY_VERSION {
            return Err(StoreError::Corrupt("unsupported store version"));
        }
        let trailer_size = trailer_len(version);
        if file_len < head_len + trailer_size as u64 {
            return Err(StoreError::Corrupt("file too short for a store"));
        }

        let mut trailer = vec![0u8; trailer_size];
        file.seek(SeekFrom::Start(file_len - trailer_size as u64))?;
        file.read_exact(&mut trailer)?;
        if trailer[trailer_size - 4..] != TRAILER_MAGIC {
            return Err(StoreError::Corrupt("missing trailer (store not closed?)"));
        }
        let index_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let entry_count = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
        // The index sits between the header and the trailer; an offset
        // inside either is corrupt (and `> file_len - trailer_size`
        // would underflow the length subtraction below).
        if index_offset < head_len || index_offset > file_len - trailer_size as u64 {
            return Err(StoreError::Corrupt("index offset outside data region"));
        }

        let index_len = file_len - trailer_size as u64 - index_offset;
        // Bound the claimed entry count by what the index region could
        // possibly hold before allocating for it.
        if entry_count as u64 * MIN_ENTRY_LEN as u64 > index_len {
            return Err(StoreError::Corrupt("entry count exceeds index size"));
        }
        let mut index_bytes = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_offset))?;
        file.read_exact(&mut index_bytes)?;

        if version >= 2 && verify {
            let stored = u64::from_le_bytes(trailer[12..20].try_into().expect("8 bytes"));
            let actual = xxh64(&index_bytes, CHECKSUM_SEED);
            if stored != actual {
                return Err(StoreError::ChecksumMismatch {
                    offset: index_offset,
                    expected: stored,
                    actual,
                });
            }
        }

        let mut index = Vec::with_capacity(entry_count as usize);
        let mut cursor = &index_bytes[..];
        for _ in 0..entry_count {
            let (entry, used) = IndexEntry::read_versioned(cursor, version)?;
            let end = entry
                .offset
                .checked_add(entry.container_len)
                .ok_or(StoreError::Corrupt("entry range overflow"))?;
            if entry.offset < head_len || end > index_offset {
                return Err(StoreError::Corrupt("entry range outside data region"));
            }
            cursor = &cursor[used..];
            index.push(entry);
        }
        if !cursor.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes after index"));
        }

        Ok(StoreReader {
            file: Mutex::new(file),
            index,
            version,
            verify,
        })
    }

    /// [`StoreReader::open`], bumping [`Counter::StoreCorruptRejected`]
    /// in `recorder` when the store is structurally invalid, plus
    /// [`Counter::ChecksumMismatches`] when the damage was caught by an
    /// integrity checksum.
    pub fn open_recorded(
        path: impl AsRef<Path>,
        recorder: &mut Recorder,
    ) -> Result<Self, StoreError> {
        let result = Self::open(path);
        match &result {
            Err(StoreError::Corrupt(_)) => recorder.incr(Counter::StoreCorruptRejected),
            Err(StoreError::ChecksumMismatch { .. }) => {
                recorder.incr(Counter::StoreCorruptRejected);
                recorder.incr(Counter::ChecksumMismatches);
            }
            _ => {}
        }
        result
    }

    /// Store format version of the underlying file (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// All index entries, in write order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Distinct time steps present, ascending.
    pub fn steps(&self) -> Vec<u32> {
        let mut steps: Vec<u32> = self.index.iter().map(|e| e.step).collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Distinct variable names, in first-appearance order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.index
            .iter()
            .filter(|e| seen.insert(e.name.as_str()))
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Locate the entry for `(step, name)`.
    pub fn entry(&self, step: u32, name: &str) -> Result<&IndexEntry, StoreError> {
        self.index
            .iter()
            .find(|e| e.step == step && e.name == name)
            .ok_or_else(|| StoreError::NotFound {
                step,
                name: name.to_string(),
            })
    }

    /// Read one variable's raw container bytes without decompressing.
    /// Fsck and salvage use this to inspect records directly.
    pub fn get_container(&self, entry: &IndexEntry) -> Result<Vec<u8>, StoreError> {
        let mut container = vec![0u8; entry.container_len as usize];
        let mut file = self
            .file
            .lock()
            .map_err(|_| StoreError::Corrupt("reader file lock poisoned"))?;
        file.seek(SeekFrom::Start(entry.offset))?;
        file.read_exact(&mut container)?;
        Ok(container)
    }

    /// Read and decompress one variable.
    ///
    /// The entry's byte range was validated against the file length at
    /// open, so the container allocation here is bounded by real
    /// on-disk bytes. In a version-2 store opened with verification
    /// (the default), the container's XXH64 is checked against the
    /// index entry before decode.
    pub fn get(&self, step: u32, name: &str) -> Result<Vec<u8>, StoreError> {
        let _span = isobar::trace::span(isobar::trace::TraceTag::StoreGet, isobar::trace::NO_CHUNK);
        let entry = self.entry(step, name)?.clone();
        let container = self.get_container(&entry)?;
        if self.version >= 2 && self.verify {
            let actual = entry_checksum(&container);
            if actual != entry.checksum {
                return Err(StoreError::ChecksumMismatch {
                    offset: entry.offset,
                    expected: entry.checksum,
                    actual,
                });
            }
        }
        let options = IsobarOptions {
            verify: self.verify,
            ..Default::default()
        };
        let data = IsobarCompressor::new(options).decompress(&container)?;
        if data.len() as u64 != entry.raw_len {
            return Err(StoreError::Corrupt("variable length mismatch"));
        }
        Ok(data)
    }

    /// [`StoreReader::get`], bumping [`Counter::StoreCorruptRejected`]
    /// in `recorder` when the stored variable fails to decode, plus
    /// [`Counter::ChecksumMismatches`] when the damage was caught by an
    /// integrity checksum.
    pub fn get_recorded(
        &self,
        step: u32,
        name: &str,
        recorder: &mut Recorder,
    ) -> Result<Vec<u8>, StoreError> {
        let result = self.get(step, name);
        match &result {
            Err(StoreError::Corrupt(_) | StoreError::Isobar(_)) => {
                recorder.incr(Counter::StoreCorruptRejected);
                if matches!(&result, Err(StoreError::Isobar(e)) if e.is_checksum_mismatch()) {
                    recorder.incr(Counter::ChecksumMismatches);
                }
            }
            Err(StoreError::ChecksumMismatch { .. }) => {
                recorder.incr(Counter::StoreCorruptRejected);
                recorder.incr(Counter::ChecksumMismatches);
            }
            _ => {}
        }
        result
    }

    /// Total raw and stored bytes across all entries: the store-level
    /// compression ratio.
    pub fn overall_ratio(&self) -> f64 {
        let raw: u64 = self.index.iter().map(|e| e.raw_len).sum();
        let stored: u64 = self.index.iter().map(|e| e.container_len).sum();
        if stored == 0 {
            1.0
        } else {
            raw as f64 / stored as f64
        }
    }
}
