//! `isobar` — command-line front end for ISOBAR-compress.
//!
//! ```text
//! isobar compress   --width 8 [--prefer speed|ratio] [--codec zlib|bzlib2]
//!                   [--linearize row|column] [--tau 1.42] [--chunk 375000]
//!                   [--level fast|default|best] [--parallel] IN OUT
//! isobar decompress [--skip-corrupt] [--no-verify] IN OUT
//! isobar analyze    --width 8 IN
//! isobar info       IN
//! isobar fsck       IN
//! isobar salvage    IN OUT
//! ```
//!
//! Exit codes: 0 success, 1 usage error, 2 processing error,
//! 3 `fsck` found damage.

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(code) => ExitCode::from(code),
            Err(err) => {
                eprintln!("isobar: {err}");
                ExitCode::from(2)
            }
        },
        Err(msg) => {
            eprintln!("isobar: {msg}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(1)
        }
    }
}
