//! ISOBAR-partitioner: split elements into compressible and
//! incompressible byte streams (§II.B, Algorithm 1, Fig. 5).
//!
//! Given the analyzer's column selection, the partitioner serializes
//! the compressible columns with the EUPA-chosen linearization (these
//! go to the solver) and the incompressible columns column-wise (these
//! are stored verbatim — their order only needs to be deterministic).
//! `reassemble` inverts the split exactly.

use crate::analyzer::ColumnSelection;
use isobar_linearize::{gather_columns, scatter_columns, Linearization};

/// Output of partitioning one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioned {
    /// Bytes of the compressible columns, serialized with the chosen
    /// linearization — the solver's input (paper's C).
    pub compressible: Vec<u8>,
    /// Bytes of the incompressible columns, column-wise — stored as-is
    /// (paper's I).
    pub incompressible: Vec<u8>,
}

/// Split `data` (`N × width` bytes) according to `selection`.
///
/// The compressible part uses `lin`; the incompressible part is always
/// column-wise (it is never compressed, and column order keeps the
/// reassembly stride-friendly).
///
/// # Example
///
/// ```
/// use isobar::partitioner::{partition, reassemble};
/// use isobar::{ColumnSelection, Linearization};
///
/// // Two elements of width 3; columns 0 and 2 selected compressible.
/// let data = [10u8, 11, 12, 20, 21, 22];
/// let selection = ColumnSelection::new(vec![true, false, true]);
///
/// let parts = partition(&data, 3, &selection, Linearization::Row);
/// assert_eq!(parts.compressible, vec![10, 12, 20, 22]); // row-wise C
/// assert_eq!(parts.incompressible, vec![11, 21]);       // column-wise I
///
/// let rebuilt = reassemble(&parts, 3, &selection, Linearization::Row);
/// assert_eq!(rebuilt, data);
/// ```
pub fn partition(
    data: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
) -> Partitioned {
    let mut parts = Partitioned {
        compressible: Vec::new(),
        incompressible: Vec::new(),
    };
    partition_into(
        data,
        width,
        selection,
        lin,
        &mut parts.compressible,
        &mut parts.incompressible,
    );
    parts
}

/// [`partition`] into caller-provided buffers (cleared and refilled) —
/// the allocation-free path the compressor's hot loop uses. For ω ≤ 8
/// the fused register path writes straight into the reused buffers; the
/// rare wide-element path falls back to the allocating gather.
pub fn partition_into(
    data: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    compressible: &mut Vec<u8>,
    incompressible: &mut Vec<u8>,
) {
    debug_assert_eq!(selection.width(), width);
    if width <= 8 && !data.is_empty() {
        // Blocked fast path: one pass over the source feeds both output
        // streams, instead of two independent strided passes.
        fused_partition8(data, width, selection, lin, compressible, incompressible);
        return;
    }
    *compressible = gather_columns(data, width, &selection.compressible(), lin);
    *incompressible = gather_columns(
        data,
        width,
        &selection.incompressible(),
        Linearization::Column,
    );
}

/// Cache-blocked partition for ω ≤ 8 (the inverse of
/// `fused_reassemble8`).
///
/// Elements are processed in blocks small enough that the source rows
/// stay in L1 while each output column streams sequentially, and the
/// inner loops are written over lockstep iterators so no per-byte index
/// arithmetic or bounds checks survive.
fn fused_partition8(
    data: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    compressible: &mut Vec<u8>,
    incompressible: &mut Vec<u8>,
) {
    let n = data.len() / width;
    let comp_cols = selection.compressible();
    let incomp_cols = selection.incompressible();
    let k = comp_cols.len();
    compressible.clear();
    compressible.resize(n * k, 0);
    incompressible.clear();
    incompressible.resize(n * incomp_cols.len(), 0);

    const BLOCK: usize = 1024;
    let mut start = 0usize;
    while start < n {
        let m = (n - start).min(BLOCK);
        let src = &data[start * width..(start + m) * width];
        match lin {
            // A fully-incompressible selection (k = 0) has no C stream;
            // chunks of width 0 would panic.
            Linearization::Row if k > 0 => {
                let dst = &mut compressible[start * k..(start + m) * k];
                for (row, out) in src.chunks_exact(width).zip(dst.chunks_exact_mut(k)) {
                    for (o, &c) in out.iter_mut().zip(&comp_cols) {
                        *o = row[c];
                    }
                }
            }
            Linearization::Row => {}
            Linearization::Column => {
                for (j, &c) in comp_cols.iter().enumerate() {
                    let dst = &mut compressible[j * n + start..j * n + start + m];
                    for (o, row) in dst.iter_mut().zip(src.chunks_exact(width)) {
                        *o = row[c];
                    }
                }
            }
        }
        for (j, &c) in incomp_cols.iter().enumerate() {
            let dst = &mut incompressible[j * n + start..j * n + start + m];
            for (o, row) in dst.iter_mut().zip(src.chunks_exact(width)) {
                *o = row[c];
            }
        }
        start += m;
    }
}

/// Inverse of [`partition`]: rebuild the original element bytes.
///
/// # Panics
///
/// Panics if the stream lengths are inconsistent with `width` and
/// `selection` (the container validates lengths before calling this).
pub fn reassemble(
    parts: &Partitioned,
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
) -> Vec<u8> {
    let total = parts.compressible.len() + parts.incompressible.len();
    let mut out = vec![0u8; total];
    reassemble_into(
        &parts.compressible,
        &parts.incompressible,
        width,
        selection,
        lin,
        &mut out,
    );
    out
}

/// [`reassemble`] into a caller-provided buffer (must be exactly
/// `compressible.len() + incompressible.len()` bytes) — the allocation-
/// free path the decompressor's hot loop uses.
pub fn reassemble_into(
    compressible: &[u8],
    incompressible: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    out: &mut [u8],
) {
    assert_eq!(out.len(), compressible.len() + incompressible.len());
    if width <= 8 && !out.is_empty() {
        // Blocked fast path: all source reads are sequential (per
        // column, or per element for a row-linearized C) and the output
        // block stays in L1 across the column passes.
        fused_reassemble8(compressible, incompressible, width, selection, lin, out);
        return;
    }
    scatter_columns(compressible, width, &selection.compressible(), lin, out);
    scatter_columns(
        incompressible,
        width,
        &selection.incompressible(),
        Linearization::Column,
        out,
    );
}

/// Cache-blocked reassembly for ω ≤ 8. Every output byte belongs to
/// exactly one column (C and I together cover the element), so the
/// column passes fill each block completely.
fn fused_reassemble8(
    compressible: &[u8],
    incompressible: &[u8],
    width: usize,
    selection: &ColumnSelection,
    lin: Linearization,
    out: &mut [u8],
) {
    let n = out.len() / width;
    let comp_cols = selection.compressible();
    let incomp_cols = selection.incompressible();
    debug_assert_eq!(compressible.len(), n * comp_cols.len());
    debug_assert_eq!(incompressible.len(), n * incomp_cols.len());
    let k = comp_cols.len();

    const BLOCK: usize = 1024;
    let mut start = 0usize;
    while start < n {
        let m = (n - start).min(BLOCK);
        let dst = &mut out[start * width..(start + m) * width];
        match lin {
            // A fully-incompressible selection (k = 0) has no C stream;
            // chunks of width 0 would panic.
            Linearization::Row if k > 0 => {
                let src = &compressible[start * k..(start + m) * k];
                for (row, element) in dst.chunks_exact_mut(width).zip(src.chunks_exact(k)) {
                    for (&b, &c) in element.iter().zip(&comp_cols) {
                        row[c] = b;
                    }
                }
            }
            Linearization::Row => {}
            Linearization::Column => {
                for (j, &c) in comp_cols.iter().enumerate() {
                    let src = &compressible[j * n + start..j * n + start + m];
                    for (row, &b) in dst.chunks_exact_mut(width).zip(src) {
                        row[c] = b;
                    }
                }
            }
        }
        for (j, &c) in incomp_cols.iter().enumerate() {
            let src = &incompressible[j * n + start..j * n + start + m];
            for (row, &b) in dst.chunks_exact_mut(width).zip(src) {
                row[c] = b;
            }
        }
        start += m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;

    fn demo_data(n: usize) -> Vec<u8> {
        // width 4: [constant, uniform, index-low, uniform]
        let mut state = 0xABCDEFu64;
        (0..n)
            .flat_map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [
                    5u8,
                    (state >> 33) as u8,
                    (i % 64) as u8,
                    (state >> 41) as u8,
                ]
            })
            .collect()
    }

    #[test]
    fn partition_splits_by_selection() {
        let data = demo_data(50_000);
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        assert_eq!(sel.bits(), &[true, false, true, false]);
        let parts = partition(&data, 4, &sel, Linearization::Row);
        assert_eq!(parts.compressible.len(), 2 * 50_000);
        assert_eq!(parts.incompressible.len(), 2 * 50_000);
        // Row linearization interleaves columns 0 and 2 per element.
        assert_eq!(parts.compressible[0], 5);
        assert_eq!(parts.compressible[1], 0); // i % 64 at i = 0
        assert_eq!(parts.compressible[3], 1); // i % 64 at i = 1
    }

    #[test]
    fn reassemble_is_exact_for_all_linearizations() {
        let data = demo_data(10_000);
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        for lin in Linearization::ALL {
            let parts = partition(&data, 4, &sel, lin);
            assert_eq!(reassemble(&parts, 4, &sel, lin), data, "{lin}");
        }
    }

    #[test]
    fn all_compressible_selection_degenerates_gracefully() {
        let data = demo_data(1000);
        let sel = crate::analyzer::ColumnSelection::new(vec![true; 4]);
        let parts = partition(&data, 4, &sel, Linearization::Row);
        assert_eq!(parts.compressible, data);
        assert!(parts.incompressible.is_empty());
        assert_eq!(reassemble(&parts, 4, &sel, Linearization::Row), data);
    }

    #[test]
    fn all_incompressible_selection_degenerates_gracefully() {
        let data = demo_data(1000);
        let sel = crate::analyzer::ColumnSelection::new(vec![false; 4]);
        let parts = partition(&data, 4, &sel, Linearization::Column);
        assert!(parts.compressible.is_empty());
        assert_eq!(parts.incompressible.len(), data.len());
        assert_eq!(reassemble(&parts, 4, &sel, Linearization::Column), data);
    }

    #[test]
    fn partition_into_reused_buffers_match_fresh_partition() {
        // Dirty, differently-sized buffers must not leak into results.
        let a = demo_data(10_000);
        let b = demo_data(3_000);
        let sel_a = Analyzer::default().analyze(&a, 4).unwrap();
        let sel_b = Analyzer::default().analyze(&b, 4).unwrap();
        let mut comp = vec![0xAA; 999];
        let mut incomp = vec![0x55; 7];
        for lin in Linearization::ALL {
            for (data, sel) in [(&a, &sel_a), (&b, &sel_b)] {
                partition_into(data, 4, sel, lin, &mut comp, &mut incomp);
                let fresh = partition(data, 4, sel, lin);
                assert_eq!(comp, fresh.compressible, "{lin}");
                assert_eq!(incomp, fresh.incompressible, "{lin}");
            }
        }
    }

    #[test]
    fn empty_input() {
        let sel = crate::analyzer::ColumnSelection::new(vec![true, false]);
        let parts = partition(&[], 2, &sel, Linearization::Row);
        assert!(parts.compressible.is_empty() && parts.incompressible.is_empty());
        assert!(reassemble(&parts, 2, &sel, Linearization::Row).is_empty());
    }

    #[test]
    fn compressible_stream_is_more_compressible_than_original() {
        // The point of the exercise: after removing the noise columns,
        // the solver sees a lower-entropy stream.
        use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate, Codec};
        let data = demo_data(100_000);
        let sel = Analyzer::default().analyze(&data, 4).unwrap();
        let parts = partition(&data, 4, &sel, Linearization::Row);
        for codec in [&Deflate::default() as &dyn Codec, &Bzip2Like::default()] {
            let whole = codec.compress(&data).len();
            let precond = codec.compress(&parts.compressible).len() + parts.incompressible.len();
            assert!(
                precond < whole,
                "{}: preconditioned {} vs whole {}",
                codec.name(),
                precond,
                whole
            );
        }
    }
}
