//! Static DEFLATE symbol tables (RFC 1951 §3.2.5–§3.2.6).

/// Number of literal/length symbols (0–285 used, 286/287 reserved).
pub const NUM_LITLEN: usize = 288;
/// Number of distance symbols (0–29 used).
pub const NUM_DIST: usize = 30;
/// End-of-block symbol.
pub const EOB: usize = 256;
/// Code-length alphabet size (symbols 0–18).
pub const NUM_CODELEN: usize = 19;
/// Maximum code length for literal/length and distance codes.
pub const MAX_CODE_LEN: u8 = 15;
/// Maximum code length for the code-length code itself.
pub const MAX_CODELEN_LEN: u8 = 7;

/// Order in which code-length code lengths are stored in a dynamic
/// block header (RFC 1951 §3.2.7).
pub const CODELEN_ORDER: [usize; NUM_CODELEN] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Base match length for each length code 257..=285.
pub const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];

/// Extra bits for each length code 257..=285.
pub const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Base distance for each distance code 0..=29.
pub const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];

/// Extra bits for each distance code 0..=29.
pub const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Length (minus [`MIN_MATCH`](crate::lz77::MIN_MATCH)) → length code.
/// Each symbol is resolved twice per match (frequency pass and emit
/// pass), so a direct 256-entry lookup beats searching the base table.
static LENGTH_TO_CODE: [u8; 256] = build_length_table();

const fn build_length_table() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut code = 0;
    while code < 29 {
        let start = LENGTH_BASE[code] as usize;
        // Length 258 gets code 285 (base 258, 0 extra), never 284 + extra.
        let end = if code + 1 < 29 {
            LENGTH_BASE[code + 1] as usize
        } else {
            259
        };
        let mut len = start;
        while len < end {
            t[len - 3] = code as u8;
            len += 1;
        }
        code += 1;
    }
    t
}

/// Two-level distance table, zlib-style: index `dist - 1` directly for
/// distances up to 256, and `256 + ((dist - 1) >> 7)` beyond. Codes for
/// distances above 256 have at least 7 extra bits, so their base ranges
/// are 128-aligned and the high half of the table is exact.
static DIST_TO_CODE: [u8; 512] = build_dist_table();

const fn build_dist_table() -> [u8; 512] {
    const fn code_of(dist: u16) -> u8 {
        let mut i = 29;
        loop {
            if DIST_BASE[i] <= dist {
                return i as u8;
            }
            i -= 1;
        }
    }
    let mut t = [0u8; 512];
    let mut d = 1usize;
    while d <= 256 {
        t[d - 1] = code_of(d as u16);
        d += 1;
    }
    let mut i = 2usize; // (dist - 1) >> 7 for dist in 257..=32768
    while i < 256 {
        t[256 + i] = code_of(((i << 7) + 1) as u16);
        i += 1;
    }
    t
}

/// Map a match length (3..=258) to `(length code - 257, extra bits, extra value)`.
#[inline]
pub fn length_code(len: u16) -> (usize, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    let idx = LENGTH_TO_CODE[(len - 3) as usize] as usize;
    (idx, LENGTH_EXTRA[idx], len - LENGTH_BASE[idx])
}

/// Map a distance (1..=32768) to `(distance code, extra bits, extra value)`.
#[inline]
pub fn dist_code(dist: u16) -> (usize, u8, u16) {
    debug_assert!(dist >= 1);
    let x = (dist - 1) as usize;
    let idx = if x < 256 {
        DIST_TO_CODE[x] as usize
    } else {
        DIST_TO_CODE[256 + (x >> 7)] as usize
    };
    (idx, DIST_EXTRA[idx], dist - DIST_BASE[idx])
}

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
pub fn fixed_litlen_lengths() -> [u8; NUM_LITLEN] {
    let mut lens = [0u8; NUM_LITLEN];
    for (sym, len) in lens.iter_mut().enumerate() {
        *len = match sym {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    lens
}

/// Fixed distance code lengths: all 5 bits.
pub fn fixed_dist_lengths() -> [u8; NUM_DIST] {
    [5u8; NUM_DIST]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_code_covers_all_lengths_exactly() {
        for len in 3u16..=258 {
            let (code, extra, value) = length_code(len);
            assert!(code < 29);
            assert_eq!(LENGTH_BASE[code] + value, len);
            assert!(
                value < (1 << extra) || extra == 0 && value == 0,
                "len {len}"
            );
        }
        // Spot-check boundary values against the RFC table.
        assert_eq!(length_code(3), (0, 0, 0));
        assert_eq!(length_code(10), (7, 0, 0));
        assert_eq!(length_code(11), (8, 1, 0));
        assert_eq!(length_code(12), (8, 1, 1));
        assert_eq!(length_code(257), (27, 5, 30));
        assert_eq!(length_code(258), (28, 0, 0));
    }

    #[test]
    fn dist_code_covers_all_distances_exactly() {
        for dist in 1u16..=32767 {
            let (code, extra, value) = dist_code(dist);
            assert!(code < 30);
            assert_eq!(DIST_BASE[code] + value, dist);
            if extra > 0 {
                assert!(value < (1 << extra));
            } else {
                assert_eq!(value, 0);
            }
        }
        assert_eq!(dist_code(1), (0, 0, 0));
        assert_eq!(dist_code(4), (3, 0, 0));
        assert_eq!(dist_code(5), (4, 1, 0));
        assert_eq!(dist_code(24577), (29, 13, 0));
    }

    #[test]
    fn fixed_tables_match_rfc() {
        let lit = fixed_litlen_lengths();
        assert_eq!(lit[0], 8);
        assert_eq!(lit[143], 8);
        assert_eq!(lit[144], 9);
        assert_eq!(lit[255], 9);
        assert_eq!(lit[256], 7);
        assert_eq!(lit[279], 7);
        assert_eq!(lit[280], 8);
        assert_eq!(lit[287], 8);
        assert!(fixed_dist_lengths().iter().all(|&l| l == 5));
    }
}
