//! Table II — headline ISOBAR-compress performance summary.
//!
//! One representative dataset per application (as in the paper): ΔCR
//! against the best standard alternative, compression throughput and
//! speed-up, decompression throughput and speed-up. Speed preference.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate};
use isobar_datasets::catalog;

fn main() {
    banner("Table II: ISOBAR-compress performance summary");
    // The paper's four headline rows map to these datasets (its GTS row
    // matches gts_chkp_zion, XGC is xgc_iphase, S3D is s3d_vmag, FLASH
    // is flash_velx — cross-referenced against Tables V/IX/X).
    let rows = [
        ("GTS", "gts_chkp_zion"),
        ("XGC", "xgc_iphase"),
        ("S3D", "s3d_vmag"),
        ("FLASH", "flash_velx"),
    ];
    println!(
        "{:<7} {:>9} {:>10} {:>7} {:>10} {:>7}   (paper: ΔCR, TPc, SpC, TPd, SpD)",
        "Dataset", "ΔCR(%)", "TPc(MB/s)", "SpC", "TPd(MB/s)", "SpD"
    );
    let paper = [
        (10.15, 111.7, 8.05, 551.90, 5.01),
        (14.09, 76.83, 21.17, 388.87, 51.92),
        (32.56, 104.73, 31.45, 424.79, 63.12),
        (17.52, 455.83, 35.89, 1617.02, 14.19),
    ];

    for ((app, name), paper_row) in rows.iter().zip(paper) {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let zlib = run_codec(&Deflate::default(), &ds.bytes);
        let bzip2 = run_codec(&Bzip2Like::default(), &ds.bytes);
        let isobar = run_isobar(&ds.bytes, ds.width(), Preference::Speed);

        // ΔCR vs the best alternative ratio; speed-ups vs the faster
        // standard compressor (Table II footnotes).
        let best_cr = zlib.ratio.max(bzip2.ratio);
        let fast_comp = zlib.comp_mbps.max(bzip2.comp_mbps);
        let fast_decomp = zlib.decomp_mbps.max(bzip2.decomp_mbps);

        println!(
            "{:<7} {:>9.2} {:>10.2} {:>7.2} {:>10.2} {:>7.2}   ({:>6.2}, {:>7.2}, {:>6.2}, {:>8.2}, {:>6.2})",
            app,
            delta_cr_pct(isobar.ratio, best_cr),
            isobar.comp_mbps,
            speedup(isobar.comp_mbps, fast_comp),
            isobar.decomp_mbps,
            speedup(isobar.decomp_mbps, fast_decomp),
            paper_row.0,
            paper_row.1,
            paper_row.2,
            paper_row.3,
            paper_row.4,
        );
    }
}
