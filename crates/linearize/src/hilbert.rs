//! Hilbert space-filling curve ordering.
//!
//! The paper motivates linearization-robustness with data laid out
//! along Hilbert curves (as used for multidimensional indexing, Lawder
//! & King 2001). The classic iterative bit-twiddling construction maps
//! between a 1-D curve index `d` and 2-D coordinates `(x, y)` on a
//! `2^k × 2^k` grid.

/// Map a curve index `d` to `(x, y)` on an `n × n` grid (`n` a power of
/// two, `d < n²`).
///
/// # Example
///
/// ```
/// use isobar_linearize::{hilbert_d2xy, hilbert_xy2d};
///
/// // The order-1 curve visits the 2×2 grid in a ∪ shape.
/// let walk: Vec<(usize, usize)> = (0..4).map(|d| hilbert_d2xy(2, d)).collect();
/// assert_eq!(walk, vec![(0, 0), (0, 1), (1, 1), (1, 0)]);
/// assert_eq!(hilbert_xy2d(2, 1, 0), 3);
/// ```
pub fn hilbert_d2xy(n: usize, d: usize) -> (usize, usize) {
    debug_assert!(n.is_power_of_two());
    debug_assert!(d < n * n);
    let (mut x, mut y) = (0usize, 0usize);
    let mut t = d;
    let mut s = 1usize;
    while s < n {
        let rx = (t / 2) & 1;
        let ry = (t ^ rx) & 1;
        rotate(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Map `(x, y)` on an `n × n` grid to its curve index (inverse of
/// [`hilbert_d2xy`]).
pub fn hilbert_xy2d(n: usize, mut x: usize, mut y: usize) -> usize {
    debug_assert!(n.is_power_of_two());
    debug_assert!(x < n && y < n);
    let mut d = 0usize;
    let mut s = n / 2;
    while s > 0 {
        let rx = usize::from(x & s > 0);
        let ry = usize::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Note: the inverse direction rotates within the full grid.
        rotate(n, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    d
}

#[inline]
fn rotate(s: usize, x: &mut usize, y: &mut usize, rx: usize, ry: usize) {
    if ry == 0 {
        if rx == 1 {
            *x = s - 1 - *x;
            *y = s - 1 - *y;
        }
        std::mem::swap(x, y);
    }
}

/// Element visitation order that linearizes `count` elements along a
/// Hilbert curve.
///
/// The elements are conceptually laid out row-major on the smallest
/// `2^k × 2^k` grid that holds them; the returned permutation lists
/// element indices in curve order, skipping grid cells beyond `count`.
/// `order[i] = j` means position `i` of the linearized stream takes
/// element `j`.
pub fn hilbert_order(count: usize) -> Vec<usize> {
    if count <= 1 {
        return (0..count).collect();
    }
    let side = (count as f64).sqrt().ceil() as usize;
    let n = side.next_power_of_two().max(2);
    let mut order = Vec::with_capacity(count);
    for d in 0..n * n {
        let (x, y) = hilbert_d2xy(n, d);
        let idx = y * n + x;
        if idx < count {
            order.push(idx);
        }
    }
    debug_assert_eq!(order.len(), count);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2xy_matches_reference_for_4x4() {
        // The canonical order-2 Hilbert curve.
        let expected = [
            (0, 0),
            (1, 0),
            (1, 1),
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 3),
            (1, 2),
            (2, 2),
            (2, 3),
            (3, 3),
            (3, 2),
            (3, 1),
            (2, 1),
            (2, 0),
            (3, 0),
        ];
        for (d, &want) in expected.iter().enumerate() {
            assert_eq!(hilbert_d2xy(4, d), want, "d = {d}");
        }
    }

    #[test]
    fn xy2d_inverts_d2xy() {
        for n in [2usize, 4, 8, 16, 64] {
            for d in 0..n * n {
                let (x, y) = hilbert_d2xy(n, d);
                assert_eq!(hilbert_xy2d(n, x, y), d, "n = {n}, d = {d}");
            }
        }
    }

    #[test]
    fn curve_visits_adjacent_cells() {
        // Consecutive curve points differ by exactly one grid step —
        // the locality property that makes Hilbert order useful.
        let n = 32;
        let mut prev = hilbert_d2xy(n, 0);
        for d in 1..n * n {
            let cur = hilbert_d2xy(n, d);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "jump at d = {d}");
            prev = cur;
        }
    }

    #[test]
    fn order_is_a_permutation_for_any_count() {
        for count in [0usize, 1, 2, 3, 5, 16, 17, 100, 1000, 1023, 1025] {
            let order = hilbert_order(count);
            assert_eq!(order.len(), count);
            let mut seen = vec![false; count];
            for &idx in &order {
                assert!(!seen[idx], "duplicate {idx} for count {count}");
                seen[idx] = true;
            }
        }
    }

    #[test]
    fn order_preserves_locality_versus_row_major() {
        // Average index distance between successive visits should be
        // far below random (≈ count/3) — it follows the grid.
        let count = 4096usize;
        let order = hilbert_order(count);
        let avg_jump: f64 = order
            .windows(2)
            .map(|w| w[0].abs_diff(w[1]) as f64)
            .sum::<f64>()
            / (count - 1) as f64;
        assert!(avg_jump < 64.0, "avg jump {avg_jump}");
    }
}
