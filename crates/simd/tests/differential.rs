//! Differential property tests: every SIMD tier available on this
//! machine must be byte-identical to the scalar oracle on random
//! lengths, widths, column subsets, and alignments — including the
//! unaligned-head and remainder-tail paths the block kernels fall back
//! through.

use isobar_simd::transpose::StreamLayout;
use isobar_simd::{adler, hist, memcmp, testable_tiers, transpose, xxh64, KernelTier};
use proptest::prelude::*;

/// (width, data) with `data.len()` a multiple of `width`. Lengths
/// straddle the SIMD block size (4096 rows) so both the full-block and
/// remainder-tail paths run.
fn shaped_data() -> impl Strategy<Value = (usize, Vec<u8>)> {
    (1usize..11, 0usize..5000, any::<u64>()).prop_map(|(width, n, seed)| {
        let mut state = seed | 1;
        let data = (0..n * width)
            .map(|_| {
                // xorshift64*: cheap deterministic bytes, richer than any::<u8>
                // at these lengths.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect();
        (width, data)
    })
}

/// Split `0..width` into two disjoint column sets by mask bit.
fn split_columns(width: usize, mask: u16) -> (Vec<usize>, Vec<usize>) {
    let a: Vec<usize> = (0..width).filter(|c| mask & (1 << c) != 0).collect();
    let b: Vec<usize> = (0..width).filter(|c| mask & (1 << c) == 0).collect();
    (a, b)
}

fn layout(idx: usize) -> StreamLayout {
    if idx == 0 {
        StreamLayout::RowMajor
    } else {
        StreamLayout::ColumnMajor
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn histograms_match_scalar((width, data) in shaped_data()) {
        let mut oracle = Vec::new();
        hist::byte_column_histograms(KernelTier::Scalar, &data, width, &mut oracle);
        for tier in testable_tiers() {
            let mut got = Vec::new();
            hist::byte_column_histograms(tier, &data, width, &mut got);
            prop_assert_eq!(&got, &oracle, "tier {}", tier);
        }
    }

    #[test]
    fn partition2_matches_scalar(
        (width, data) in shaped_data(),
        mask in any::<u16>(),
        lin_idx in 0usize..2,
    ) {
        let n = data.len() / width;
        let (a_cols, b_cols) = split_columns(width, mask);
        let a_layout = layout(lin_idx);

        let mut a_oracle = vec![0u8; n * a_cols.len()];
        let mut b_oracle = vec![0u8; n * b_cols.len()];
        transpose::partition2(
            KernelTier::Scalar, &data, width,
            &a_cols, a_layout, &mut a_oracle, &b_cols, &mut b_oracle,
        );
        for tier in testable_tiers() {
            let mut a = vec![0u8; n * a_cols.len()];
            let mut b = vec![0u8; n * b_cols.len()];
            transpose::partition2(
                tier, &data, width, &a_cols, a_layout, &mut a, &b_cols, &mut b,
            );
            prop_assert_eq!(&a, &a_oracle, "tier {} stream A", tier);
            prop_assert_eq!(&b, &b_oracle, "tier {} stream B", tier);
        }
    }

    #[test]
    fn reassemble2_round_trips_every_tier(
        (width, data) in shaped_data(),
        mask in any::<u16>(),
        lin_idx in 0usize..2,
    ) {
        // a_cols ∪ b_cols covers every column, so the clobber contract
        // is satisfied and the rebuilt rows must equal the input.
        let n = data.len() / width;
        let (a_cols, b_cols) = split_columns(width, mask);
        let a_layout = layout(lin_idx);

        let mut a = vec![0u8; n * a_cols.len()];
        let mut b = vec![0u8; n * b_cols.len()];
        transpose::partition2(
            KernelTier::Scalar, &data, width,
            &a_cols, a_layout, &mut a, &b_cols, &mut b,
        );
        for tier in testable_tiers() {
            let mut out = vec![0xA5u8; data.len()];
            transpose::reassemble2(
                tier, &a, &a_cols, a_layout, &b, &b_cols, width, &mut out,
            );
            prop_assert_eq!(&out, &data, "tier {}", tier);
        }
    }

    #[test]
    fn shuffle_matches_scalar((width, data) in shaped_data()) {
        let mut oracle = vec![0u8; data.len()];
        transpose::shuffle_into(KernelTier::Scalar, &data, width, &mut oracle);
        for tier in testable_tiers() {
            let mut shuffled = vec![0u8; data.len()];
            transpose::shuffle_into(tier, &data, width, &mut shuffled);
            prop_assert_eq!(&shuffled, &oracle, "tier {} shuffle", tier);

            let mut back = vec![0u8; data.len()];
            transpose::unshuffle_into(tier, &shuffled, width, &mut back);
            prop_assert_eq!(&back, &data, "tier {} unshuffle", tier);
        }
    }

    #[test]
    fn xxh64_stripes_match_scalar(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let seed_state = [1u64, 2, 3, 4];
        let mut oracle = seed_state;
        let consumed = xxh64::consume_stripes(KernelTier::Scalar, &mut oracle, &data);
        prop_assert_eq!(consumed, data.len() - data.len() % 32);
        for tier in testable_tiers() {
            let mut v = seed_state;
            let got = xxh64::consume_stripes(tier, &mut v, &data);
            prop_assert_eq!(got, consumed, "tier {} consumed", tier);
            prop_assert_eq!(v, oracle, "tier {} lanes", tier);
        }
    }

    #[test]
    fn adler_fold_matches_scalar(
        data in proptest::collection::vec(any::<u8>(), 0..12_000),
        a_seed in any::<u16>(),
        b_seed in any::<u16>(),
    ) {
        let a = u32::from(a_seed) % adler::MOD;
        let b = u32::from(b_seed) % adler::MOD;
        let oracle = adler::fold(KernelTier::Scalar, a, b, &data);
        for tier in testable_tiers() {
            prop_assert_eq!(adler::fold(tier, a, b, &data), oracle, "tier {}", tier);
        }
    }

    #[test]
    fn common_prefix_matches_naive_at_any_alignment(
        body in proptest::collection::vec(any::<u8>(), 0..200),
        head_a in 0usize..40,
        head_b in 0usize..40,
        diverge_at in any::<u16>(),
    ) {
        // Two copies at independent offsets inside larger buffers, so
        // the slices land on arbitrary alignments; optionally force a
        // divergence point inside the shared prefix.
        let mut buf_a = vec![0x11u8; head_a];
        buf_a.extend_from_slice(&body);
        let mut buf_b = vec![0x22u8; head_b];
        buf_b.extend_from_slice(&body);
        let a = &buf_a[head_a..];
        let mut b_owned = buf_b[head_b..].to_vec();
        if !b_owned.is_empty() {
            let at = diverge_at as usize % b_owned.len();
            if diverge_at & 0x8000 != 0 {
                b_owned[at] ^= 0xFF;
            }
        }
        let b = &b_owned[..];

        let naive = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        for tier in testable_tiers() {
            prop_assert_eq!(
                memcmp::common_prefix(tier, a, b), naive, "tier {}", tier
            );
        }
    }
}

/// Directed edge lengths around every block and vector boundary — the
/// exact remainder-path seams proptest may only sample.
#[test]
fn directed_boundary_lengths_match_scalar() {
    let interesting: &[usize] = &[
        0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 127, 4095, 4096, 4097, 8191, 8192, 8193,
    ];
    for &n in interesting {
        for width in 1..=9usize {
            let data: Vec<u8> = (0..n * width).map(|i| (i * 131 % 251) as u8).collect();
            let mut oracle = Vec::new();
            hist::byte_column_histograms(KernelTier::Scalar, &data, width, &mut oracle);
            let cols: Vec<usize> = (0..width).collect();
            let (evens, odds) = split_columns(width, 0b0101_0101_0101_0101);
            let mut shuf_oracle = vec![0u8; data.len()];
            transpose::shuffle_into(KernelTier::Scalar, &data, width, &mut shuf_oracle);
            for tier in testable_tiers() {
                let mut got = Vec::new();
                hist::byte_column_histograms(tier, &data, width, &mut got);
                assert_eq!(got, oracle, "hist n={n} width={width} tier={tier}");

                let mut shuffled = vec![0u8; data.len()];
                transpose::shuffle_into(tier, &data, width, &mut shuffled);
                assert_eq!(
                    shuffled, shuf_oracle,
                    "shuffle n={n} width={width} tier={tier}"
                );

                let mut a = vec![0u8; n * evens.len()];
                let mut b = vec![0u8; n * odds.len()];
                transpose::partition2(
                    tier,
                    &data,
                    width,
                    &evens,
                    StreamLayout::ColumnMajor,
                    &mut a,
                    &odds,
                    &mut b,
                );
                let mut back = vec![0u8; data.len()];
                transpose::reassemble2(
                    tier,
                    &a,
                    &evens,
                    StreamLayout::ColumnMajor,
                    &b,
                    &odds,
                    width,
                    &mut back,
                );
                assert_eq!(back, data, "round-trip n={n} width={width} tier={tier}");
            }
            let _ = cols;
        }
    }
}
