//! Minimal filesystem abstraction behind the store writer.
//!
//! The commit protocol's crash-consistency claim ("a reader always
//! sees the old store or the new store, never a torn one") is only as
//! good as the sequence of writes, fsyncs, and renames that implements
//! it — and that sequence cannot be proven by integration tests on a
//! real filesystem, because a real filesystem never crashes on cue.
//!
//! [`StoreFs`] narrows the writer's view of the filesystem to exactly
//! the operations the protocol uses. Production code runs on
//! [`RealFs`]; the crash-injection harness (`isobar-fuzz-harness`)
//! substitutes an in-memory filesystem that kills the writer at every
//! operation boundary — including mid-write, with torn prefixes — and
//! then proves the invariant over the simulated on-disk state.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A writable file as the store writer sees it.
pub trait StoreFile: Send {
    /// Append all of `buf`. May buffer; durability requires
    /// [`StoreFile::sync_data`].
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flush any buffer and force written bytes to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The slice of filesystem behavior the commit protocol relies on.
pub trait StoreFs: Send {
    /// The file handle type this filesystem produces.
    type File: StoreFile;

    /// Create (truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Self::File>;

    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    /// Durability of the rename itself requires [`StoreFs::sync_dir`]
    /// on the parent directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete a file (used to discard an uncommitted temporary).
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Force directory metadata (creations, renames) to stable
    /// storage.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Read a whole file. The sharded writer uses this to load the
    /// committed manifest before starting a new generation.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Create a directory (and any missing parents). Succeeds if the
    /// directory already exists.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// List the entries directly inside `dir` (full paths, files only,
    /// unspecified order). The serve daemon's write-ahead journal uses
    /// this on startup to discover leftover per-tenant journal files.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<std::path::PathBuf>>;
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

/// A buffered real file; [`StoreFile::sync_data`] flushes the buffer
/// and fsyncs.
pub struct RealFile {
    inner: BufWriter<File>,
}

impl StoreFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_data()
    }
}

impl StoreFs for RealFs {
    type File = RealFile;

    fn create(&self, path: &Path) -> io::Result<RealFile> {
        Ok(RealFile {
            inner: BufWriter::new(File::create(path)?),
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directories cannot be opened for write; a read handle is
        // enough for fsync on every platform we target. Platforms
        // where directory fsync is unsupported report an error we
        // deliberately ignore — the rename already happened and
        // nothing stronger is available.
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        match OpenOptions::new().read(true).open(dir) {
            Ok(handle) => {
                let _ = handle.sync_all();
                Ok(())
            }
            Err(_) => Ok(()),
        }
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<std::path::PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_fs_write_sync_rename_cycle() {
        let dir = std::env::temp_dir();
        let wip = dir.join(format!("isobar-vfs-{}.wip", std::process::id()));
        let fin = dir.join(format!("isobar-vfs-{}.dat", std::process::id()));
        let fs = RealFs;
        let mut f = fs.create(&wip).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        drop(f);
        fs.rename(&wip, &fin).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert_eq!(std::fs::read(&fin).unwrap(), b"hello");
        assert!(!wip.exists());
        fs.remove_file(&fin).unwrap();
    }
}
