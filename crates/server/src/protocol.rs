//! Wire protocol for `isobar serve`.
//!
//! A deliberately small length-prefixed binary framing: every request
//! starts with a fixed 19-byte header carrying the magic, version,
//! opcode, and the lengths of the three variable-length fields that
//! follow (tenant, name, payload). Every length is validated against a
//! hard cap *before* any allocation happens, so a hostile client can
//! neither panic the daemon nor make it allocate unbounded memory —
//! the same typed-error, bounded-allocation discipline the container
//! and store decoders follow.
//!
//! ## Request frame
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ISRQ"
//! 4       1     protocol version (= 1)
//! 5       1     opcode (1 = put, 2 = get, 3 = stat, 4 = ls)
//! 6       2     tenant length      (u16 LE, <= 255)
//! 8       2     name length        (u16 LE, <= 4096)
//! 10      4     step               (u32 LE)
//! 14      1     element width      (put only: 1, 2, 4, or 8)
//! 15      4     payload length     (u32 LE, put only, <= max_payload)
//! 19      ...   tenant bytes, then name bytes, then payload bytes
//! ```
//!
//! ## Response frame
//!
//! ```text
//! offset  size  field
//! 0       4     magic "ISRP"
//! 4       1     protocol version (= 1)
//! 5       1     status (see [`Status`])
//! 6       4     payload length (u32 LE)
//! 10      1     reserved (= 0)
//! 11      ...   payload bytes
//! ```
//!
//! The header is decoded from a stack buffer; tenant and name are
//! bounded by constants; the payload bound is the server's configured
//! `max_payload`. Responses other than `Ok` carry a human-readable
//! diagnostic as their payload.

use std::fmt;
use std::io::{self, Read, Write};

/// Request frame magic.
pub const REQUEST_MAGIC: [u8; 4] = *b"ISRQ";
/// Response frame magic.
pub const RESPONSE_MAGIC: [u8; 4] = *b"ISRP";
/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed request header size in bytes.
pub const REQUEST_HEADER_LEN: usize = 19;
/// Fixed response header size in bytes.
pub const RESPONSE_HEADER_LEN: usize = 11;
/// Longest accepted tenant identifier, in bytes.
pub const MAX_TENANT_LEN: usize = 255;
/// Longest accepted variable name, in bytes.
pub const MAX_NAME_LEN: usize = 4096;
/// Byte that joins tenant and name into a store key; forbidden inside
/// either field so one tenant can never forge another tenant's keys.
pub const TENANT_SEPARATOR: u8 = 0x1f;

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Store one variable (payload = raw element bytes).
    Put = 1,
    /// Fetch one variable (response payload = raw element bytes).
    Get = 2,
    /// Describe one variable (response payload = text key/value line).
    Stat = 3,
    /// List the tenant's variables (response payload = text lines).
    Ls = 4,
}

impl Opcode {
    /// Decode a wire byte; `None` for anything this version does not
    /// speak.
    pub fn from_wire(byte: u8) -> Option<Opcode> {
        match byte {
            1 => Some(Opcode::Put),
            2 => Some(Opcode::Get),
            3 => Some(Opcode::Stat),
            4 => Some(Opcode::Ls),
            _ => None,
        }
    }
}

/// How the daemon answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request succeeded; the payload is the result.
    Ok = 0,
    /// Admission control rejected the request: the daemon's in-flight
    /// byte budget is full. Back off and retry.
    Busy = 1,
    /// The named variable does not exist (for this tenant).
    NotFound = 2,
    /// The request frame was malformed; the connection is closed
    /// afterwards because the stream can no longer be trusted to be
    /// frame-aligned.
    BadRequest = 3,
    /// The store failed internally; the payload describes the error.
    ServerError = 4,
    /// The daemon is draining for shutdown and accepts no new work.
    ShuttingDown = 5,
}

impl Status {
    /// Decode a wire byte; `None` for unknown status values.
    pub fn from_wire(byte: u8) -> Option<Status> {
        match byte {
            0 => Some(Status::Ok),
            1 => Some(Status::Busy),
            2 => Some(Status::NotFound),
            3 => Some(Status::BadRequest),
            4 => Some(Status::ServerError),
            5 => Some(Status::ShuttingDown),
            _ => None,
        }
    }
}

/// Why a frame was rejected. Every variant is a deterministic verdict
/// about the bytes — never a panic, never an allocation proportional
/// to attacker-controlled lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first four bytes were not [`REQUEST_MAGIC`] /
    /// [`RESPONSE_MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown status byte in a response.
    BadStatus(u8),
    /// Tenant field longer than [`MAX_TENANT_LEN`].
    TenantTooLong(usize),
    /// Name field longer than [`MAX_NAME_LEN`].
    NameTooLong(usize),
    /// Name field empty (every request addresses a variable or, for
    /// `ls`, must still carry a non-empty placeholder of `*`).
    EmptyName,
    /// Payload length above the server's configured cap.
    PayloadTooLarge {
        /// Claimed payload length.
        len: u64,
        /// The server's cap.
        max: u64,
    },
    /// A non-`put` request claimed a payload.
    UnexpectedPayload(u8),
    /// A `put` with a width other than 1, 2, 4, or 8.
    BadWidth(u8),
    /// A `put` whose payload length is zero or not a multiple of the
    /// element width (the store pipeline requires whole elements).
    PayloadNotElements {
        /// Claimed payload length.
        len: u64,
        /// Claimed element width.
        width: u8,
    },
    /// Tenant or name bytes were not valid UTF-8.
    BadUtf8(&'static str),
    /// Tenant or name contained the reserved [`TENANT_SEPARATOR`].
    ReservedSeparator(&'static str),
    /// The non-reserved response header byte was not zero.
    BadReserved(u8),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadOpcode(b) => write!(f, "unknown opcode {b}"),
            ProtoError::BadStatus(b) => write!(f, "unknown status {b}"),
            ProtoError::TenantTooLong(n) => {
                write!(
                    f,
                    "tenant of {n} bytes exceeds the {MAX_TENANT_LEN}-byte cap"
                )
            }
            ProtoError::NameTooLong(n) => {
                write!(f, "name of {n} bytes exceeds the {MAX_NAME_LEN}-byte cap")
            }
            ProtoError::EmptyName => write!(f, "empty variable name"),
            ProtoError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::UnexpectedPayload(op) => {
                write!(f, "opcode {op} must not carry a payload")
            }
            ProtoError::BadWidth(w) => {
                write!(f, "element width {w} is not one of 1, 2, 4, 8")
            }
            ProtoError::PayloadNotElements { len, width } => {
                write!(
                    f,
                    "payload of {len} bytes is not a positive multiple of width {width}"
                )
            }
            ProtoError::BadUtf8(field) => write!(f, "{field} is not valid UTF-8"),
            ProtoError::ReservedSeparator(field) => {
                write!(f, "{field} contains the reserved separator byte 0x1f")
            }
            ProtoError::BadReserved(b) => write!(f, "reserved header byte is {b}, not 0"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A frame-level failure: either the bytes were wrong ([`ProtoError`])
/// or the transport failed underneath them.
#[derive(Debug)]
pub enum FrameError {
    /// The bytes arrived but do not form a valid frame.
    Proto(ProtoError),
    /// The transport failed (including truncation mid-frame).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Proto(e) => write!(f, "protocol error: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<ProtoError> for FrameError {
    fn from(e: ProtoError) -> Self {
        FrameError::Proto(e)
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// The fixed request header, validated but with the variable-length
/// fields not yet read. The daemon runs admission control between the
/// header and the payload, so an over-budget `put` is rejected before
/// its bytes are buffered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHeader {
    /// What the request asks for.
    pub opcode: Opcode,
    /// Tenant field length in bytes (0 = the default tenant).
    pub tenant_len: u16,
    /// Name field length in bytes.
    pub name_len: u16,
    /// Simulation time step addressed.
    pub step: u32,
    /// Element width (meaningful for `put` only).
    pub width: u8,
    /// Payload length in bytes (`put` only, 0 otherwise).
    pub payload_len: u32,
}

/// A fully decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What the request asks for.
    pub opcode: Opcode,
    /// Tenant namespace ("" = the default tenant).
    pub tenant: String,
    /// Variable name.
    pub name: String,
    /// Simulation time step addressed.
    pub step: u32,
    /// Element width (meaningful for `put` only).
    pub width: u8,
    /// Raw element bytes (`put` only, empty otherwise).
    pub payload: Vec<u8>,
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// How the daemon answered.
    pub status: Status,
    /// Result bytes (`Ok`) or a diagnostic message (anything else).
    pub payload: Vec<u8>,
}

/// Parse and validate a fixed request header from `buf`
/// (`buf.len() == REQUEST_HEADER_LEN`). Pure — no I/O, no allocation.
pub fn parse_request_header(
    buf: &[u8; REQUEST_HEADER_LEN],
    max_payload: u64,
) -> Result<RequestHeader, ProtoError> {
    if buf[..4] != REQUEST_MAGIC {
        return Err(ProtoError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    if buf[4] != PROTOCOL_VERSION {
        return Err(ProtoError::BadVersion(buf[4]));
    }
    let opcode = Opcode::from_wire(buf[5]).ok_or(ProtoError::BadOpcode(buf[5]))?;
    let tenant_len = u16::from_le_bytes([buf[6], buf[7]]);
    let name_len = u16::from_le_bytes([buf[8], buf[9]]);
    let step = u32::from_le_bytes([buf[10], buf[11], buf[12], buf[13]]);
    let width = buf[14];
    let payload_len = u32::from_le_bytes([buf[15], buf[16], buf[17], buf[18]]);
    if tenant_len as usize > MAX_TENANT_LEN {
        return Err(ProtoError::TenantTooLong(tenant_len as usize));
    }
    if name_len as usize > MAX_NAME_LEN {
        return Err(ProtoError::NameTooLong(name_len as usize));
    }
    if name_len == 0 && opcode != Opcode::Ls {
        return Err(ProtoError::EmptyName);
    }
    match opcode {
        Opcode::Put => {
            if !matches!(width, 1 | 2 | 4 | 8) {
                return Err(ProtoError::BadWidth(width));
            }
            if u64::from(payload_len) > max_payload {
                return Err(ProtoError::PayloadTooLarge {
                    len: u64::from(payload_len),
                    max: max_payload,
                });
            }
            if payload_len == 0 || !payload_len.is_multiple_of(u32::from(width)) {
                return Err(ProtoError::PayloadNotElements {
                    len: u64::from(payload_len),
                    width,
                });
            }
        }
        Opcode::Get | Opcode::Stat | Opcode::Ls => {
            if payload_len != 0 {
                return Err(ProtoError::UnexpectedPayload(opcode as u8));
            }
        }
    }
    Ok(RequestHeader {
        opcode,
        tenant_len,
        name_len,
        step,
        width,
        payload_len,
    })
}

/// Validate one identifier field (tenant or name) that was read off
/// the wire: UTF-8, no reserved separator.
pub fn validate_field(field: &'static str, bytes: Vec<u8>) -> Result<String, ProtoError> {
    if bytes.contains(&TENANT_SEPARATOR) {
        return Err(ProtoError::ReservedSeparator(field));
    }
    String::from_utf8(bytes).map_err(|_| ProtoError::BadUtf8(field))
}

/// Read exactly `len` bytes, growing the buffer in bounded steps so a
/// frame that lies about its length and then stalls or disconnects has
/// only ever cost one chunk of allocation, not the full claimed size.
pub fn read_bounded(r: &mut impl Read, len: usize) -> io::Result<Vec<u8>> {
    const STEP: usize = 1 << 20;
    let mut buf = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(STEP);
        let old = buf.len();
        buf.resize(old + take, 0);
        r.read_exact(&mut buf[old..])?;
        remaining -= take;
    }
    Ok(buf)
}

/// Read and throw away `len` bytes in small chunks: used to keep the
/// stream frame-aligned when a request is rejected (e.g. `Busy`)
/// without buffering the rejected payload.
pub fn discard_exact(r: &mut impl Read, len: u64) -> io::Result<()> {
    let mut scratch = [0u8; 16 * 1024];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(scratch.len() as u64) as usize;
        r.read_exact(&mut scratch[..take])?;
        remaining -= take as u64;
    }
    Ok(())
}

/// Read one request header off the wire. `Ok(None)` means the peer
/// closed the connection cleanly before starting a frame.
pub fn read_request_header(
    r: &mut impl Read,
    max_payload: u64,
) -> Result<Option<RequestHeader>, FrameError> {
    let mut buf = [0u8; REQUEST_HEADER_LEN];
    // Distinguish clean EOF (no frame at all) from truncation.
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "request header truncated",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(parse_request_header(&buf, max_payload)?))
}

/// Read the tenant and name fields that follow a request header. Both
/// fields are consumed off the wire before either is validated, so a
/// validation failure leaves the stream frame-aligned (only the
/// payload, if any, remains unread).
pub fn read_request_fields(
    r: &mut impl Read,
    header: &RequestHeader,
) -> Result<(String, String), FrameError> {
    let tenant_bytes = read_bounded(r, header.tenant_len as usize)?;
    let name_bytes = read_bounded(r, header.name_len as usize)?;
    let tenant = validate_field("tenant", tenant_bytes)?;
    let name = validate_field("name", name_bytes)?;
    Ok((tenant, name))
}

/// Encode a request into a frame (used by clients and by the fuzz
/// harness to build its specimen pool).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut frame = Vec::with_capacity(
        REQUEST_HEADER_LEN + req.tenant.len() + req.name.len() + req.payload.len(),
    );
    frame.extend_from_slice(&REQUEST_MAGIC);
    frame.push(PROTOCOL_VERSION);
    frame.push(req.opcode as u8);
    frame.extend_from_slice(&(req.tenant.len() as u16).to_le_bytes());
    frame.extend_from_slice(&(req.name.len() as u16).to_le_bytes());
    frame.extend_from_slice(&req.step.to_le_bytes());
    frame.push(req.width);
    frame.extend_from_slice(&(req.payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(req.tenant.as_bytes());
    frame.extend_from_slice(req.name.as_bytes());
    frame.extend_from_slice(&req.payload);
    frame
}

/// Write one response frame.
pub fn write_response(w: &mut impl Write, status: Status, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; RESPONSE_HEADER_LEN];
    header[..4].copy_from_slice(&RESPONSE_MAGIC);
    header[4] = PROTOCOL_VERSION;
    header[5] = status as u8;
    header[6..10].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[10] = 0;
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one response frame. `max_payload` bounds the allocation a
/// misbehaving server could induce in a client.
pub fn read_response(r: &mut impl Read, max_payload: u64) -> Result<Response, FrameError> {
    let mut header = [0u8; RESPONSE_HEADER_LEN];
    r.read_exact(&mut header).map_err(FrameError::Io)?;
    if header[..4] != RESPONSE_MAGIC {
        return Err(ProtoError::BadMagic([header[0], header[1], header[2], header[3]]).into());
    }
    if header[4] != PROTOCOL_VERSION {
        return Err(ProtoError::BadVersion(header[4]).into());
    }
    let status = Status::from_wire(header[5]).ok_or(ProtoError::BadStatus(header[5]))?;
    let payload_len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if u64::from(payload_len) > max_payload {
        return Err(ProtoError::PayloadTooLarge {
            len: u64::from(payload_len),
            max: max_payload,
        }
        .into());
    }
    if header[10] != 0 {
        return Err(ProtoError::BadReserved(header[10]).into());
    }
    let payload = read_bounded(r, payload_len as usize)?;
    Ok(Response { status, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put_request() -> Request {
        Request {
            opcode: Opcode::Put,
            tenant: "acme".into(),
            name: "density".into(),
            step: 7,
            width: 8,
            payload: vec![0x11; 64],
        }
    }

    fn decode(frame: &[u8], max_payload: u64) -> Result<Request, FrameError> {
        let mut cursor = io::Cursor::new(frame);
        let header = read_request_header(&mut cursor, max_payload)?.expect("frame present");
        let (tenant, name) = read_request_fields(&mut cursor, &header)?;
        let payload = read_bounded(&mut cursor, header.payload_len as usize)?;
        Ok(Request {
            opcode: header.opcode,
            tenant,
            name,
            step: header.step,
            width: header.width,
            payload,
        })
    }

    #[test]
    fn encode_decode_round_trips() {
        for req in [
            put_request(),
            Request {
                opcode: Opcode::Get,
                tenant: String::new(),
                name: "phi".into(),
                step: 0,
                width: 0,
                payload: Vec::new(),
            },
            Request {
                opcode: Opcode::Ls,
                tenant: "t1".into(),
                name: String::new(),
                step: 0,
                width: 0,
                payload: Vec::new(),
            },
        ] {
            let frame = encode_request(&req);
            let back = decode(&frame, 1 << 20).expect("valid frame decodes");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, Status::Ok, b"hello").unwrap();
        let resp = read_response(&mut io::Cursor::new(&wire), 1 << 20).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.payload, b"hello");
    }

    /// The pinned corrupt-frame specimen corpus: each specimen is a
    /// hand-built hostile frame and the exact typed verdict the
    /// decoder must return for it. These are regression pins — if one
    /// starts decoding, the bounded-decode discipline regressed.
    #[test]
    fn corrupt_frame_specimens_get_typed_verdicts() {
        let good = encode_request(&put_request());
        let max = 1 << 20;

        // Specimen 1: wrong magic.
        let mut f = good.clone();
        f[..4].copy_from_slice(b"JUNK");
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::BadMagic(_)))
        ));

        // Specimen 2: future protocol version.
        let mut f = good.clone();
        f[4] = 9;
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::BadVersion(9)))
        ));

        // Specimen 3: unknown opcode.
        let mut f = good.clone();
        f[5] = 0xEE;
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::BadOpcode(0xEE)))
        ));

        // Specimen 4: tenant length above the cap.
        let mut f = good.clone();
        f[6..8].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::TenantTooLong(_)))
        ));

        // Specimen 5: name length above the cap.
        let mut f = good.clone();
        f[8..10].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::NameTooLong(_)))
        ));

        // Specimen 6: payload length above the server cap — rejected
        // from the header alone, before any payload allocation.
        let mut f = good.clone();
        f[15..19].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&f, 1024),
            Err(FrameError::Proto(ProtoError::PayloadTooLarge { .. }))
        ));

        // Specimen 7: get with a payload.
        let get = Request {
            opcode: Opcode::Get,
            tenant: String::new(),
            name: "x".into(),
            step: 0,
            width: 0,
            payload: Vec::new(),
        };
        let mut f = encode_request(&get);
        f[15..19].copy_from_slice(&8u32.to_le_bytes());
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::UnexpectedPayload(2)))
        ));

        // Specimen 8: put with a width of 3.
        let mut f = good.clone();
        f[14] = 3;
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::BadWidth(3)))
        ));

        // Specimen 9: put whose payload is not whole elements.
        let mut f = good.clone();
        f[15..19].copy_from_slice(&63u32.to_le_bytes());
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::PayloadNotElements { .. }))
        ));

        // Specimen 10: empty name on a get.
        let mut f = encode_request(&get);
        f[8..10].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::EmptyName))
        ));

        // Specimen 11: tenant carrying the reserved separator.
        let mut evil = put_request();
        evil.tenant = "a\u{1f}b".into();
        let f = encode_request(&evil);
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::ReservedSeparator("tenant")))
        ));

        // Specimen 12: non-UTF-8 name bytes.
        let mut f = good.clone();
        // name starts after header + tenant ("acme" = 4 bytes)
        f[REQUEST_HEADER_LEN + 4] = 0xFF;
        assert!(matches!(
            decode(&f, max),
            Err(FrameError::Proto(ProtoError::BadUtf8("name")))
        ));

        // Specimen 13: frame truncated mid-payload.
        let mut f = good.clone();
        f.truncate(f.len() - 10);
        assert!(matches!(decode(&f, max), Err(FrameError::Io(_))));

        // Specimen 14: empty input is a clean EOF, not an error.
        let mut cursor = io::Cursor::new(&[][..]);
        assert!(read_request_header(&mut cursor, max).unwrap().is_none());

        // Specimen 15: truncated header (EOF after 5 bytes) is a
        // transport error, not a clean EOF and not a panic.
        let mut cursor = io::Cursor::new(&good[..5]);
        assert!(matches!(
            read_request_header(&mut cursor, max),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn bad_response_frames_get_typed_verdicts() {
        let mut wire = Vec::new();
        write_response(&mut wire, Status::Ok, b"x").unwrap();

        let mut f = wire.clone();
        f[5] = 99;
        assert!(matches!(
            read_response(&mut io::Cursor::new(&f), 1024),
            Err(FrameError::Proto(ProtoError::BadStatus(99)))
        ));

        let mut f = wire.clone();
        f[10] = 7;
        assert!(matches!(
            read_response(&mut io::Cursor::new(&f), 1024),
            Err(FrameError::Proto(ProtoError::BadReserved(7)))
        ));

        let mut f = wire;
        f[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_response(&mut io::Cursor::new(&f), 1024),
            Err(FrameError::Proto(ProtoError::PayloadTooLarge { .. }))
        ));
    }

    #[test]
    fn discard_exact_drains_without_buffering() {
        let data = vec![0xAAu8; 100_000];
        let mut cursor = io::Cursor::new(&data);
        discard_exact(&mut cursor, 100_000).unwrap();
        assert_eq!(cursor.position(), 100_000);
        assert!(discard_exact(&mut cursor, 1).is_err(), "EOF is an error");
    }
}
