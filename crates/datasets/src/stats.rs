//! Dataset statistics: Eq. 4 (unique values), Eq. 5 (Shannon entropy),
//! Eq. 6 (randomness), plus the per-byte-column histograms the
//! analyzer consumes (Table III of the paper).

use crate::catalog::Dataset;
use std::collections::HashMap;

/// Statistics of one dataset, mirroring Table III's columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset size in bytes.
    pub size_bytes: usize,
    /// Number of elements.
    pub elements: usize,
    /// Percentage of distinct element values (Eq. 4).
    pub unique_pct: f64,
    /// Shannon entropy of the element-value distribution in bits (Eq. 5).
    pub entropy_bits: f64,
    /// Entropy relative to an all-unique dataset of the same size (Eq. 6).
    pub randomness_pct: f64,
}

/// Compute Eq. 4–6 for a dataset.
pub fn dataset_stats(ds: &Dataset) -> DatasetStats {
    element_stats(&ds.bytes, ds.width())
}

/// Compute Eq. 4–6 for raw element bytes.
pub fn element_stats(bytes: &[u8], width: usize) -> DatasetStats {
    assert!(width > 0 && bytes.len().is_multiple_of(width));
    let n = bytes.len() / width;
    let mut counts: HashMap<&[u8], u64> = HashMap::with_capacity(n.min(1 << 20));
    for element in bytes.chunks_exact(width) {
        *counts.entry(element).or_insert(0) += 1;
    }
    let unique = counts.len();
    let entropy_bits = shannon_entropy(counts.values().copied());
    // H(Random(|V|)) for an all-unique vector is log2(n).
    let max_entropy = if n > 1 { (n as f64).log2() } else { 1.0 };
    DatasetStats {
        size_bytes: bytes.len(),
        elements: n,
        unique_pct: if n == 0 {
            0.0
        } else {
            unique as f64 / n as f64 * 100.0
        },
        entropy_bits,
        randomness_pct: (entropy_bits / max_entropy * 100.0).min(100.0),
    }
}

/// Shannon entropy (bits) of a frequency distribution (Eq. 5).
pub fn shannon_entropy(counts: impl IntoIterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Per-byte-column value histograms: `hist[col][byte_value]`.
///
/// This is the exact statistic the ISOBAR-analyzer thresholds; it is
/// exposed here so the figure-1-style analyses and tests can reuse it.
pub fn byte_column_histograms(bytes: &[u8], width: usize) -> Vec<[u32; 256]> {
    assert!(width > 0 && bytes.len().is_multiple_of(width));
    let mut hists = vec![[0u32; 256]; width];
    for element in bytes.chunks_exact(width) {
        for (hist, &b) in hists.iter_mut().zip(element) {
            hist[b as usize] += 1;
        }
    }
    hists
}

/// Shannon entropy (bits, max 8) of each byte-column.
pub fn byte_column_entropies(bytes: &[u8], width: usize) -> Vec<f64> {
    byte_column_histograms(bytes, width)
        .iter()
        .map(|hist| shannon_entropy(hist.iter().map(|&c| c as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn entropy_of_uniform_distribution_is_log2() {
        let h = shannon_entropy([10u64; 16]);
        assert!((h - 4.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(shannon_entropy([42u64]), 0.0);
        assert_eq!(shannon_entropy([]), 0.0);
    }

    #[test]
    fn entropy_ignores_zero_counts() {
        assert_eq!(shannon_entropy([5u64, 0, 5]), 1.0);
    }

    #[test]
    fn all_unique_elements_have_full_randomness() {
        let bytes: Vec<u8> = (0..1024u32).flat_map(|i| i.to_le_bytes()).collect();
        let stats = element_stats(&bytes, 4);
        assert_eq!(stats.elements, 1024);
        assert_eq!(stats.unique_pct, 100.0);
        assert!((stats.entropy_bits - 10.0).abs() < 1e-9);
        assert!((stats.randomness_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_elements_reduce_unique_and_randomness() {
        let mut bytes = Vec::new();
        for i in 0..1024u32 {
            bytes.extend_from_slice(&(i % 8).to_le_bytes());
        }
        let stats = element_stats(&bytes, 4);
        assert!((stats.unique_pct - 8.0 / 1024.0 * 100.0).abs() < 1e-9);
        assert!((stats.entropy_bits - 3.0).abs() < 1e-9);
        assert!(stats.randomness_pct < 31.0);
    }

    #[test]
    fn byte_column_histograms_count_every_byte() {
        let bytes = [1u8, 2, 1, 2, 1, 3];
        let hists = byte_column_histograms(&bytes, 2);
        assert_eq!(hists[0][1], 3);
        assert_eq!(hists[1][2], 2);
        assert_eq!(hists[1][3], 1);
        let total: u32 = hists.iter().flat_map(|h| h.iter()).sum();
        assert_eq!(total as usize, bytes.len());
    }

    #[test]
    fn byte_column_entropies_distinguish_noise_from_signal() {
        let ds = catalog::spec("gts_phi_l").unwrap().generate(50_000, 3);
        let entropies = byte_column_entropies(&ds.bytes, 8);
        // Low 6 bytes ≈ 8 bits (uniform); top 2 bytes strongly skewed.
        for (c, &h) in entropies.iter().enumerate() {
            if c < 6 {
                assert!(h > 7.9, "column {c}: {h}");
            } else {
                assert!(h < 7.0, "column {c}: {h}");
            }
        }
    }

    #[test]
    fn catalog_unique_percentages_track_paper_classes() {
        // Spot-check the three uniqueness regimes of Table III.
        let n = 50_000;
        let high = dataset_stats(&catalog::spec("flash_velx").unwrap().generate(n, 1));
        assert!(high.unique_pct > 99.0, "{}", high.unique_pct);
        let mid = dataset_stats(&catalog::spec("xgc_igid").unwrap().generate(n, 1));
        assert!((10.0..40.0).contains(&mid.unique_pct), "{}", mid.unique_pct);
        let low = dataset_stats(&catalog::spec("num_plasma").unwrap().generate(n, 1));
        assert!(low.unique_pct < 1.0, "{}", low.unique_pct);
    }

    #[test]
    fn randomness_tracks_paper_classes() {
        let n = 50_000;
        let random = dataset_stats(&catalog::spec("flash_velx").unwrap().generate(n, 1));
        assert!(random.randomness_pct > 99.0);
        let repetitive = dataset_stats(&catalog::spec("msg_sppm").unwrap().generate(n, 1));
        assert!(
            repetitive.randomness_pct < 85.0,
            "{}",
            repetitive.randomness_pct
        );
    }
}
