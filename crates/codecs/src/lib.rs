#![warn(missing_docs)]

//! From-scratch general-purpose lossless codecs used as ISOBAR "solvers".
//!
//! The ISOBAR paper (ICDE 2012) preconditions input for general-purpose
//! lossless compressors, using zlib and bzlib2 as its reference solvers.
//! This crate reimplements both families from first principles so the
//! whole reproduction is self-contained:
//!
//! * [`deflate`] — a DEFLATE (RFC 1951) encoder/decoder with a zlib
//!   (RFC 1950) container: LZ77 hash-chain matching with lazy evaluation,
//!   fixed and dynamic canonical Huffman blocks, stored-block fallback.
//! * [`bwt`] — a bzip2-class block codec: run-length preconditioning,
//!   Burrows–Wheeler transform (suffix-array based), move-to-front,
//!   zero-run encoding, and canonical Huffman entropy coding.
//!
//! Shared substrates live in their own modules: [`bitio`] (LSB- and
//! MSB-first bit streams), [`huffman`] (package-merge length-limited code
//! construction plus canonical encode/decode tables), [`lz77`] (match
//! finding), [`suffix`] (SA-IS suffix array construction), [`mtf`] and
//! [`rle`].
//!
//! All codecs implement the [`Codec`] trait, which is the interface the
//! ISOBAR pipeline drives. Every codec round-trips arbitrary byte
//! streams exactly; this is enforced by unit and property tests.
//!
//! # Example
//!
//! ```
//! use isobar_codecs::{Codec, deflate::Deflate, bwt::Bzip2Like};
//!
//! let data: Vec<u8> = b"how much wood would a woodchuck chuck".repeat(100);
//! for codec in [&Deflate::default() as &dyn Codec, &Bzip2Like::default()] {
//!     let packed = codec.compress(&data);
//!     assert!(packed.len() < data.len());
//!     assert_eq!(codec.decompress(&packed).unwrap(), data);
//! }
//! ```

pub mod bitio;
pub mod bwt;
pub mod codec;
pub mod deflate;
pub mod huffman;
pub mod lz77;
pub mod mtf;
pub mod pfor;
pub mod rle;
pub mod shuffle;
pub mod suffix;
pub mod xxhash;

pub use codec::{codec_for, Codec, CodecError, CodecId, CodecScratch, CompressionLevel};
