//! Integration tests for span tracing through the batch pipeline.
//!
//! Trace state is process-global (one active flag, one drain
//! registry), so every test here serializes on [`TRACE_LOCK`] and
//! drains completely before releasing it. Assertions are gated on
//! [`isobar::trace::ENABLED`] so the suite stays green in the
//! trace-off build; the machine running CI may have a single core, so
//! nothing here asserts a minimum number of worker threads.

use isobar::trace::{self, TraceTag};
use isobar::{CodecId, IsobarCompressor, IsobarOptions, Linearization};
use std::sync::Mutex;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

const CHUNK_ELEMENTS: usize = 4096;
const CHUNKS: usize = 4;

/// Improvable 8-byte elements: predictable top half, noisy bottom half
/// (the shape from Fig. 1 of the paper), so the analyzer partitions
/// every chunk and the Partition stage appears in the trace.
fn mixed_data() -> Vec<u8> {
    (0..(CHUNKS * CHUNK_ELEMENTS) as u64)
        .flat_map(|i| ((i / 7) << 32 | (i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF)).to_le_bytes())
        .collect()
}

fn compressor() -> IsobarCompressor {
    IsobarCompressor::new(IsobarOptions {
        chunk_elements: CHUNK_ELEMENTS,
        parallel: true,
        codec_override: Some(CodecId::Deflate),
        linearization_override: Some(Linearization::Row),
        ..Default::default()
    })
}

/// Count of non-instant spans with this tag and chunk, across threads.
fn span_count(t: &trace::Trace, tag: TraceTag, chunk: u32) -> usize {
    t.threads
        .iter()
        .flat_map(|th| &th.events)
        .filter(|e| !e.instant && e.tag == tag && e.chunk == chunk)
        .count()
}

#[test]
fn parallel_compress_spans_are_complete_and_ordered() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let data = mixed_data();
    let isobar = compressor();

    trace::reset();
    trace::set_active(true);
    let packed = isobar.compress(&data, 8).expect("aligned input");
    trace::set_active(false);
    let t = trace::drain();

    assert_eq!(isobar.decompress(&packed).expect("own container"), data);
    if !trace::ENABLED {
        assert_eq!(t.event_count(), 0);
        return;
    }
    assert_eq!(t.dropped_count(), 0, "ring overflowed in a small run");

    for thread in &t.threads {
        // Events land in the ring at completion time, so each
        // thread's sequence is monotonic in end time; each span's
        // clock must also run forward.
        let mut last_end = 0;
        for e in &thread.events {
            assert!(
                e.begin_nanos <= e.end_nanos,
                "span {:?} ends before it begins",
                e.tag
            );
            assert!(
                e.end_nanos >= last_end,
                "tid {} events out of completion order",
                thread.tid
            );
            last_end = e.end_nanos;
        }
        // A thread runs one stage at a time: any two of its spans are
        // either disjoint or fully nested, never partially overlapping.
        let spans: Vec<_> = thread.events.iter().filter(|e| !e.instant).collect();
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                let disjoint = a.end_nanos <= b.begin_nanos || b.end_nanos <= a.begin_nanos;
                let nested = (a.begin_nanos >= b.begin_nanos && a.end_nanos <= b.end_nanos)
                    || (b.begin_nanos >= a.begin_nanos && b.end_nanos <= a.end_nanos);
                assert!(
                    disjoint || nested,
                    "tid {}: {:?} and {:?} partially overlap",
                    thread.tid,
                    a,
                    b
                );
            }
        }
    }

    // Every chunk flows through Analyze → Partition → Solver → Merge
    // exactly once, no matter which worker picked it up.
    for chunk in 0..CHUNKS as u32 {
        for tag in [
            TraceTag::ChunkCompress,
            TraceTag::Analyze,
            TraceTag::Partition,
            TraceTag::SolverCompress,
            TraceTag::ChunkMerge,
        ] {
            assert_eq!(
                span_count(&t, tag, chunk),
                1,
                "{tag:?} count for chunk {chunk}"
            );
        }
    }
    assert_eq!(span_count(&t, TraceTag::ContainerWrite, trace::NO_CHUNK), 1);

    // The Chrome export must carry every span as a begin/end pair.
    let json = t.to_chrome_json();
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    let begins = json.matches("\"ph\": \"B\"").count();
    let ends = json.matches("\"ph\": \"E\"").count();
    let span_total = t
        .threads
        .iter()
        .flat_map(|th| &th.events)
        .filter(|e| !e.instant)
        .count();
    assert_eq!(begins, span_total);
    assert_eq!(ends, span_total);
}

#[test]
fn parallel_decode_spans_cover_every_chunk_once() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let data = mixed_data();
    let isobar = compressor();
    let packed = isobar.compress(&data, 8).expect("aligned input");

    trace::reset();
    trace::set_active(true);
    assert_eq!(isobar.decompress(&packed).expect("own container"), data);
    trace::set_active(false);
    let t = trace::drain();

    if !trace::ENABLED {
        assert_eq!(t.event_count(), 0);
        return;
    }
    assert_eq!(span_count(&t, TraceTag::ContainerRead, trace::NO_CHUNK), 1);
    for chunk in 0..CHUNKS as u32 {
        for tag in [
            TraceTag::ChunkDecode,
            TraceTag::SolverDecompress,
            TraceTag::Reassemble,
        ] {
            assert_eq!(
                span_count(&t, tag, chunk),
                1,
                "{tag:?} count for chunk {chunk}"
            );
        }
    }
}

#[test]
fn inactive_tracing_records_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::reset();
    // No set_active(true): the whole run must leave the rings empty.
    let data = mixed_data();
    let isobar = compressor();
    let packed = isobar.compress(&data, 8).expect("aligned input");
    assert_eq!(isobar.decompress(&packed).expect("own container"), data);
    assert_eq!(trace::drain().event_count(), 0);
}
