//! Ablation — ISOBAR's selective partitioning versus blind byte
//! shuffling (Blosc/bitshuffle style).
//!
//! Byte-shuffle transposes the element matrix and compresses all of
//! it; ISOBAR additionally *drops* the noise columns from the solver's
//! input. This ablation quantifies the difference on hard and easy
//! datasets: ratio and throughput for {zlib, shuffle+zlib, ISOBAR-Sp}.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::deflate::Deflate;
use isobar_codecs::shuffle::ShuffledCodec;
use isobar_datasets::catalog;

const DATASETS: [&str; 6] = [
    "gts_chkp_zion",
    "flash_gamc",
    "s3d_vmag",
    "msg_sweep3d",
    "msg_sppm",
    "msg_bt",
];

fn main() {
    banner("Ablation: blind byte-shuffle vs ISOBAR's selective partitioning");
    println!(
        "{:<15} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8}",
        "", "zlib", "", "shuf+z", "", "ISOBAR", ""
    );
    println!(
        "{:<15} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8}",
        "Dataset", "CR", "TPc", "CR", "TPc", "CR", "TPc"
    );
    for name in DATASETS {
        let spec = catalog::spec(name).expect("catalog entry");
        let ds = generate(&spec);
        let zlib = run_codec(&Deflate::default(), &ds.bytes);

        let shuffled = ShuffledCodec::new(Deflate::default(), ds.width());
        let (packed, secs) = time(|| shuffled.compress(&ds.bytes));
        let (unpacked, _) = time(|| shuffled.decompress(&packed).expect("own stream"));
        assert_eq!(unpacked, ds.bytes);
        let shuf_cr = ds.bytes.len() as f64 / packed.len() as f64;
        let shuf_tp = mbps(ds.bytes.len(), secs);

        let isobar = run_isobar(&ds.bytes, ds.width(), Preference::Speed);

        println!(
            "{:<15} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2}",
            name, zlib.ratio, zlib.comp_mbps, shuf_cr, shuf_tp, isobar.ratio, isobar.comp_mbps,
        );
    }
    println!();
    println!("expected shape: shuffling improves the ratio over plain zlib but");
    println!("pays the solver for every byte; ISOBAR matches or beats the shuffle");
    println!("ratio at a multiple of its throughput on noisy datasets, because the");
    println!("incompressible columns bypass the solver entirely.");
}
