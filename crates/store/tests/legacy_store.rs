//! Back-compat: version-1 (pre-checksum) stores must keep opening and
//! decoding, and fsck must classify them as legacy rather than damaged.
//!
//! The fixture is hand-assembled from the frozen v1 emitters — a v1
//! store head, a record wrapping a v1 (pre-checksum) container, a
//! checksum-less index entry, and the 16-byte v1 trailer — so these
//! tests keep proving back-compat even after the current writer moves
//! on.

use isobar::container::{ChunkMode, ChunkRecord, Header, LEGACY_VERSION as CONTAINER_V1};
use isobar::Linearization;
use isobar_codecs::{codec_for, CodecId, CompressionLevel};
use isobar_store::{
    fsck_store, EntryHealth, IndexEntry, StoreReader, LEGACY_VERSION, MAGIC, TRAILER_MAGIC,
    TRAILER_V1_LEN,
};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("isobar-legacy-store-{}-{name}", std::process::id()))
}

/// A v1 (pre-checksum) ISOBAR container holding bytes 0..128.
fn legacy_container() -> (Vec<u8>, Vec<u8>) {
    let original: Vec<u8> = (0..128u8).collect();
    let codec = codec_for(CodecId::Deflate, CompressionLevel::Default);
    let header = Header {
        version: CONTAINER_V1,
        width: 2,
        codec: CodecId::Deflate,
        level: CompressionLevel::Default,
        linearization: Linearization::Row,
        preference: 0,
        chunk_elements: 64,
        total_len: original.len() as u64,
        checksum: isobar_codecs::deflate::adler32(&original),
    };
    let record = ChunkRecord {
        mode: ChunkMode::Passthrough,
        elements: 64,
        mask: 0,
        compressed: codec.compress(&original),
        incompressible: Vec::new(),
    };
    let mut bytes = Vec::new();
    header.write(&mut bytes);
    record.write_legacy(&mut bytes);
    (bytes, original)
}

/// Hand-assemble a complete version-1 store holding one variable.
fn legacy_store_bytes() -> (Vec<u8>, Vec<u8>) {
    let (container, original) = legacy_container();
    let name = b"density";
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.push(LEGACY_VERSION);

    // One record: name_len u16 | name | step u32 | width u8 |
    // container_len u64 | container.
    bytes.extend_from_slice(&(name.len() as u16).to_le_bytes());
    bytes.extend_from_slice(name);
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.push(2);
    bytes.extend_from_slice(&(container.len() as u64).to_le_bytes());
    let container_offset = bytes.len() as u64;
    bytes.extend_from_slice(&container);

    // Checksum-less v1 index entry, then the 16-byte v1 trailer.
    let index_offset = bytes.len() as u64;
    let entry = IndexEntry {
        name: String::from_utf8(name.to_vec()).unwrap(),
        step: 0,
        width: 2,
        offset: container_offset,
        container_len: container.len() as u64,
        raw_len: original.len() as u64,
        checksum: 0,
    };
    entry.write_legacy(&mut bytes);
    bytes.extend_from_slice(&index_offset.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&TRAILER_MAGIC);
    (bytes, original)
}

fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, &b| {
        (acc ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

#[test]
fn legacy_store_bytes_are_bit_stable() {
    // The v1 emitters are frozen; if this fingerprint drifts, the
    // back-compat tests below stop proving anything.
    let (bytes, _) = legacy_store_bytes();
    let fingerprint = fnv(&bytes);
    let expected = 0x893c_44f5_523b_ed2au64; // regenerate only with a v1 layout change (never)
    assert_eq!(
        fingerprint,
        expected,
        "legacy store fixture drifted: {fingerprint:#018x} (len {})",
        bytes.len()
    );
    // Structure sanity: trailer magic sits exactly TRAILER_V1_LEN from
    // the end — a v1 store has no index-checksum field.
    assert_eq!(&bytes[bytes.len() - 4..], &TRAILER_MAGIC);
    assert_eq!(bytes.len() - TRAILER_V1_LEN, {
        let at = bytes.len() - TRAILER_V1_LEN;
        u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize + {
            let mut probe = Vec::new();
            IndexEntry {
                name: "density".into(),
                step: 0,
                width: 2,
                offset: 0,
                container_len: 0,
                raw_len: 0,
                checksum: 0,
            }
            .write_legacy(&mut probe);
            probe.len()
        }
    });
}

#[test]
fn legacy_store_still_opens_and_decodes() {
    let (bytes, original) = legacy_store_bytes();
    let path = tmp("decode.isst");
    std::fs::write(&path, &bytes).unwrap();
    // The default, verifying open must accept a v1 store: there are no
    // checksums to verify, not a verification failure.
    let reader = StoreReader::open(&path).expect("v1 store must keep opening");
    assert_eq!(reader.version(), LEGACY_VERSION);
    assert_eq!(reader.entries().len(), 1);
    assert_eq!(
        reader.entries()[0].checksum,
        0,
        "v1 entries surface checksum 0"
    );
    assert_eq!(reader.get(0, "density").unwrap(), original);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn legacy_store_fsck_reports_legacy_unverifiable() {
    let (bytes, _) = legacy_store_bytes();
    let path = tmp("fsck.isst");
    std::fs::write(&path, &bytes).unwrap();
    let report = fsck_store(&path).unwrap();
    assert!(report.is_clean(), "structurally sound v1 store is clean");
    assert!(report.legacy, "v1 store must be flagged legacy");
    assert_eq!(report.version, LEGACY_VERSION);
    assert_eq!(
        report.entries[0].health,
        EntryHealth::LegacyUnverifiable,
        "v1 container in a v1 store has nothing to verify against"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn legacy_store_damage_is_still_detected_structurally() {
    // No checksums — but a stomped container magic still fails the
    // embedded decoder, and fsck still calls the entry damaged.
    let (bytes, _) = legacy_store_bytes();
    let path = tmp("damage.isst");
    let mut bad = bytes.clone();
    // Container starts right after head (5) + record header (2+7+4+1+8).
    let container_at = 5 + 2 + 7 + 4 + 1 + 8;
    bad[container_at] = b'X';
    std::fs::write(&path, &bad).unwrap();
    let reader = StoreReader::open(&path).unwrap();
    assert!(reader.get(0, "density").is_err());
    let report = fsck_store(&path).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.entries[0].health, EntryHealth::Damaged);
    std::fs::remove_file(&path).unwrap();
}
