//! Golden test for the Prometheus text exposition: the rendered output
//! of a fixed snapshot is pinned byte-for-byte. If this fails because
//! you intentionally changed the exposition (new counter, renamed
//! family), regenerate the golden with
//! `BLESS=1 cargo test -p isobar-telemetry --test prometheus_golden`
//! and review the diff like any other format change.

use isobar_telemetry::{StageStats, TelemetrySnapshot};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");

fn fixture() -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::default();
    for (i, slot) in snap.counters.iter_mut().enumerate() {
        *slot = (i as u64).wrapping_mul(31) % 97;
    }
    for (i, stage) in snap.stages.iter_mut().enumerate() {
        *stage = StageStats {
            count: i as u64 + 1,
            total_nanos: (i as u64 + 1) * 1_234_567,
            min_nanos: 1_000 + i as u64,
            max_nanos: 900_000 + i as u64,
        };
    }
    for (i, slot) in snap.tau_margin.iter_mut().enumerate() {
        *slot = (i as u64 * i as u64) % 13;
    }
    snap.eupa_selected = [3, 0, 1, 0];
    snap.eupa_trial_count = [8, 8, 8, 8];
    snap.eupa_trial_nanos = [1_000_000, 2_500_000, 40_000_000, 312_500];
    snap
}

#[test]
fn prometheus_exposition_matches_golden() {
    let rendered = fixture().to_prometheus();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/prometheus.txt; \
         re-bless with BLESS=1 if the change is intentional"
    );
}
