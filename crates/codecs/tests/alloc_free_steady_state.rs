//! Proof that the steady-state compress loop is allocation-free.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up pass that grows every scratch buffer to its steady-state
//! capacity, a further `compress_into` call on the same-shaped input
//! must perform zero heap allocations.
//!
//! This file intentionally contains exactly ONE `#[test]`: cargo runs
//! each integration-test file as its own binary, and a second
//! concurrently-running test would pollute the allocation counter.

use isobar_codecs::{Codec, CodecScratch, CompressionLevel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is an allocation event for our purposes: the hot
        // loop must not even grow an existing buffer.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// The bench workload in miniature: interleaved smooth/noisy doubles.
fn chunk(elements: usize, seed: u64) -> Vec<u8> {
    let mut state = seed;
    (0..elements)
        .flat_map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = state >> 32;
            let pred = (i as u64 / 100) % 50;
            ((pred << 32) | noise).to_le_bytes()
        })
        .collect()
}

#[test]
fn warm_deflate_compress_into_performs_zero_allocations() {
    let codec = isobar_codecs::deflate::Deflate::new(CompressionLevel::Default);
    let mut scratch = CodecScratch::new();
    let mut out = Vec::new();

    // Two warm-up chunks with different content grow every buffer —
    // token queue, hash tables, Huffman scratch, header RLE buffers,
    // and the output vector — to their steady-state capacity.
    let warm_a = chunk(40_000, 0x9E37_79B9_7F4A_7C15);
    let warm_b = chunk(40_000, 0x2545_F491_4F6C_DD1D);
    codec.compress_into(&warm_a, &mut out, &mut scratch);
    codec.compress_into(&warm_b, &mut out, &mut scratch);

    // Steady state: same-sized chunk, different bytes. Not one byte of
    // heap traffic is allowed.
    let hot = chunk(40_000, 0x853C_49E6_748F_EA9B);
    let before = allocs();
    codec.compress_into(&hot, &mut out, &mut scratch);
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "steady-state compress_into allocated {during} times"
    );

    // Sanity: the output is still a valid stream for this input.
    assert_eq!(codec.decompress(&out).unwrap(), hot);
}
