//! SIGINT/SIGTERM handling without a libc dependency.
//!
//! The workspace has no crates.io access, so this hand-declares the
//! one C symbol it needs. The handler does the only async-signal-safe
//! thing possible — it stores into a process-global atomic — and a
//! watcher thread owned by the caller polls that flag and runs the
//! actual shutdown (which takes locks and does I/O, neither of which
//! is legal inside a signal handler).

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);
static USR1: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    extern "C" fn on_signal(_sig: i32) {
        super::TRIGGERED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" fn on_usr1(_sig: i32) {
        super::USR1.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    #[cfg(target_os = "macos")]
    const SIGUSR1: i32 = 30;
    #[cfg(not(target_os = "macos"))]
    const SIGUSR1: i32 = 10;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn install_usr1() {
        unsafe {
            signal(SIGUSR1, on_usr1);
        }
    }
}

/// Install SIGINT and SIGTERM handlers that set the shutdown flag.
/// No-op on non-Unix platforms (shutdown is then only reachable
/// programmatically). Idempotent.
pub fn install_shutdown_signals() {
    #[cfg(unix)]
    unix::install();
}

/// Install a SIGUSR1 handler that sets the dump flag. The serve loop
/// polls [`take_usr1`] and writes a flight-recorder dump when it
/// fires. No-op on non-Unix platforms. Idempotent.
pub fn install_usr1_signal() {
    #[cfg(unix)]
    unix::install_usr1();
}

/// Whether a shutdown signal has been received.
pub fn shutdown_requested() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Consume a pending SIGUSR1: returns `true` at most once per signal.
pub fn take_usr1() -> bool {
    USR1.swap(false, Ordering::SeqCst)
}

/// Reset the flags (tests only; real daemons exit after one shutdown).
pub fn reset_for_tests() {
    TRIGGERED.store(false, Ordering::SeqCst);
    USR1.store(false, Ordering::SeqCst);
}
