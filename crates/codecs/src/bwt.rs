//! The bzip2-class solver: RLE1 → BWT → MTF → zero-run RLE → Huffman.
//!
//! This is the reproduction's stand-in for the paper's "bzlib2". It
//! follows the same block-oriented architecture as bzip2: the input is
//! split into blocks (size set by [`CompressionLevel`]), each block is
//! run-length preconditioned, Burrows–Wheeler transformed (via the
//! linear-time SA-IS suffix array in [`crate::suffix`]), move-to-front
//! coded, zero-run coded in bijective base 2, and entropy coded with a
//! canonical Huffman table stored per block.
//!
//! Differences from the bzip2 file format (this codec defines its own
//! container; interoperability is not a goal): the BWT uses an explicit
//! sentinel instead of a stored rotation index, a single Huffman table
//! is used per block instead of six with selector streams, and the
//! integrity checksum is Adler-32 over the whole payload.

use crate::bitio::{MsbBitReader, MsbBitWriter};
use crate::codec::{Codec, CodecError, CodecId, CodecScratch, CompressionLevel};
use crate::deflate::adler32;
use crate::huffman::{HuffmanDecoder, HuffmanEncoder};
use crate::mtf::{mtf_decode, mtf_encode};
use crate::rle::{rle1_decode, rle1_encode, zrle_decode_bounded, zrle_encode};
use crate::suffix::suffix_array_bytes;

/// BWT alphabet: 256 byte values (shifted +1) plus the sentinel 0.
const BWT_ALPHA: usize = 257;
/// Entropy alphabet: RUNA, RUNB, then MTF ranks 1..=256 shifted by one.
const ENTROPY_ALPHA: usize = 258;
/// Maximum Huffman code length for the entropy stage.
const MAX_CODE_LEN: u8 = 20;
/// Bits used to store each code length in the block header.
const LEN_FIELD_BITS: u32 = 5;

/// Burrows–Wheeler transform of `data`.
///
/// Returns the last column of the sorted rotations of `data + sentinel`,
/// as symbols over the 257-value `BWT_ALPHA` alphabet (byte `b` appears
/// as `b + 1`; the sentinel 0 appears exactly once). Output length is
/// `data.len() + 1`.
///
/// # Example
///
/// ```
/// use isobar_codecs::bwt::{bwt_forward, bwt_inverse};
///
/// let bwt = bwt_forward(b"banana");
/// // Rendered with '$' for the sentinel: the classic "annb$aa".
/// let rendered: String = bwt
///     .iter()
///     .map(|&s| if s == 0 { '$' } else { (s - 1) as u8 as char })
///     .collect();
/// assert_eq!(rendered, "annb$aa");
/// assert_eq!(bwt_inverse(&bwt).unwrap(), b"banana");
/// ```
pub fn bwt_forward(data: &[u8]) -> Vec<u16> {
    let sa = suffix_array_bytes(data);
    let n = sa.len(); // data.len() + 1
    let symbol_at = |i: usize| -> u16 {
        if i == n - 1 {
            0
        } else {
            data[i] as u16 + 1
        }
    };
    sa.iter()
        .map(|&pos| {
            let prev = if pos == 0 { n - 1 } else { pos as usize - 1 };
            symbol_at(prev)
        })
        .collect()
}

/// Inverse BWT: recover the original bytes from the last column.
///
/// Validates that the input contains exactly one sentinel and no symbol
/// outside the alphabet.
pub fn bwt_inverse(bwt: &[u16]) -> Result<Vec<u8>, CodecError> {
    if bwt.is_empty() {
        return Err(CodecError::Corrupt("empty BWT block"));
    }
    let n = bwt.len();
    let mut counts = [0u32; BWT_ALPHA];
    for &sym in bwt {
        if sym as usize >= BWT_ALPHA {
            return Err(CodecError::Corrupt("BWT symbol outside alphabet"));
        }
        counts[sym as usize] += 1;
    }
    if counts[0] != 1 {
        return Err(CodecError::Corrupt("BWT block must contain one sentinel"));
    }

    // first[c] = index in the sorted first column where symbol c starts.
    let mut first = [0u32; BWT_ALPHA + 1];
    for c in 0..BWT_ALPHA {
        first[c + 1] = first[c] + counts[c];
    }

    // LF mapping: lf[i] = first[bwt[i]] + rank of this occurrence.
    let mut next_rank = first;
    let mut lf = vec![0u32; n];
    for (i, &sym) in bwt.iter().enumerate() {
        lf[i] = next_rank[sym as usize];
        next_rank[sym as usize] += 1;
    }

    // Walk from the sentinel row (row 0 of the sorted matrix); each step
    // prepends one character.
    let mut out = vec![0u8; n - 1];
    let mut row = 0u32;
    for slot in out.iter_mut().rev() {
        let sym = bwt[row as usize];
        // A single sentinel does not guarantee a single cycle: a crafted
        // last column can close the LF walk early and revisit row 0.
        if sym == 0 {
            return Err(CodecError::Corrupt("BWT sentinel encountered mid-walk"));
        }
        *slot = (sym - 1) as u8;
        row = lf[row as usize];
    }
    if bwt[row as usize] != 0 {
        return Err(CodecError::Corrupt("BWT walk did not close its cycle"));
    }
    Ok(out)
}

/// The bzip2-class block codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bzip2Like {
    level: CompressionLevel,
}

impl Bzip2Like {
    /// Create the codec at the given effort level.
    pub fn new(level: CompressionLevel) -> Self {
        Bzip2Like { level }
    }

    /// The configured effort level.
    pub fn level(&self) -> CompressionLevel {
        self.level
    }

    /// Block size in bytes (bzip2 trades memory and speed for ratio the
    /// same way: 100k–900k by level).
    pub fn block_size(&self) -> usize {
        match self.level {
            CompressionLevel::Fast => 128 * 1024,
            CompressionLevel::Default => 512 * 1024,
            CompressionLevel::Best => 900 * 1024,
        }
    }
}

impl Codec for Bzip2Like {
    fn id(&self) -> CodecId {
        CodecId::Bzip2Like
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress_into(data, &mut out, &mut CodecScratch::new());
        out
    }

    fn compress_into(&self, data: &[u8], out: &mut Vec<u8>, _scratch: &mut CodecScratch) {
        // The output buffer is reused across calls; the BWT stages still
        // allocate internally per block (see DESIGN.md — the suffix-array
        // and MTF temporaries dominate and are a planned follow-up).
        out.clear();
        let mut w = MsbBitWriter::with_prefix(std::mem::take(out));
        let num_blocks = if data.is_empty() {
            0
        } else {
            data.len().div_ceil(self.block_size())
        };
        w.write_bits(num_blocks as u32, 32);
        if !data.is_empty() {
            for block in data.chunks(self.block_size()) {
                encode_block(&mut w, block);
            }
        }
        w.write_bits(adler32(data), 32);
        *out = w.finish();
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(data, &mut out, &mut CodecScratch::new())?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        data: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut CodecScratch,
    ) -> Result<(), CodecError> {
        let mut r = MsbBitReader::new(data);
        let num_blocks = r.read_bits(32)? as usize;
        // Sanity bound: each block encodes at least a few bits.
        if num_blocks > data.len().saturating_mul(8) + 1 {
            return Err(CodecError::Corrupt("implausible block count"));
        }
        out.clear();
        for _ in 0..num_blocks {
            decode_block(&mut r, out)?;
        }
        let expected = r.read_bits(32)?;
        let actual = adler32(out);
        if expected != actual {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        Ok(())
    }
}

/// Symbols per selector group (bzip2's constant).
const GROUP_SIZE: usize = 50;
/// Maximum number of Huffman tables per block (bzip2's constant).
const MAX_TABLES: usize = 6;
/// Refinement passes when assigning groups to tables.
const TABLE_PASSES: usize = 4;

/// bzip2's table-count schedule by symbol count.
fn num_tables_for(n_syms: usize) -> usize {
    match n_syms {
        0..=199 => 2,
        200..=599 => 3,
        600..=1199 => 4,
        1200..=2399 => 5,
        _ => MAX_TABLES,
    }
}

/// Assign each 50-symbol group to one of `n_tables` Huffman tables and
/// build the tables, bzip2-style: start from a round-robin assignment,
/// then alternate "rebuild tables from their groups" and "reassign each
/// group to its cheapest table" for a few passes.
fn build_tables(symbols: &[u16], n_tables: usize) -> (Vec<HuffmanEncoder>, Vec<u8>) {
    let groups: Vec<&[u16]> = symbols.chunks(GROUP_SIZE).collect();
    let mut selectors: Vec<u8> = (0..groups.len()).map(|g| (g % n_tables) as u8).collect();
    let mut encoders: Vec<HuffmanEncoder> = Vec::new();
    for _ in 0..TABLE_PASSES {
        // Rebuild each table from its assigned groups. The +1 floor
        // guarantees every symbol has a code in every table, so any
        // later reassignment stays encodable.
        let mut freqs = vec![[1u64; ENTROPY_ALPHA]; n_tables];
        for (group, &sel) in groups.iter().zip(&selectors) {
            for &sym in *group {
                freqs[sel as usize][sym as usize] += 1;
            }
        }
        encoders = freqs
            .iter()
            .map(|f| HuffmanEncoder::from_freqs(f, MAX_CODE_LEN))
            .collect();

        // Reassign each group to the cheapest table.
        for (group, sel) in groups.iter().zip(&mut selectors) {
            let mut best = (u64::MAX, *sel);
            for (t, enc) in encoders.iter().enumerate() {
                let cost: u64 = group.iter().map(|&s| enc.len(s as usize) as u64).sum();
                if cost < best.0 {
                    best = (cost, t as u8);
                }
            }
            *sel = best.1;
        }
    }
    (encoders, selectors)
}

/// Serialize one table's code lengths with bzip2's delta scheme: a
/// 5-bit starting length, then per symbol `10` (increment), `11`
/// (decrement), `0` (emit current and advance). Adjacent symbols have
/// similar lengths, so this averages ~1–2 bits/symbol versus 5 for
/// fixed fields.
fn write_delta_lengths(w: &mut MsbBitWriter, enc: &HuffmanEncoder) {
    let mut cur = enc.len(0) as i32;
    w.write_bits(cur as u32, LEN_FIELD_BITS);
    for sym in 0..ENTROPY_ALPHA {
        let len = enc.len(sym) as i32;
        while cur != len {
            w.write_bits(1, 1);
            if len > cur {
                w.write_bits(0, 1);
                cur += 1;
            } else {
                w.write_bits(1, 1);
                cur -= 1;
            }
        }
        w.write_bits(0, 1);
    }
}

/// Inverse of [`write_delta_lengths`].
fn read_delta_lengths(r: &mut MsbBitReader<'_>) -> Result<[u8; ENTROPY_ALPHA], CodecError> {
    let mut cur = r.read_bits(LEN_FIELD_BITS)? as i32;
    let mut lengths = [0u8; ENTROPY_ALPHA];
    for len in lengths.iter_mut() {
        loop {
            if r.read_bit()? == 0 {
                break;
            }
            if r.read_bit()? == 0 {
                cur += 1;
            } else {
                cur -= 1;
            }
            if !(1..=MAX_CODE_LEN as i32).contains(&cur) {
                return Err(CodecError::Corrupt("delta-coded length out of range"));
            }
        }
        if !(1..=MAX_CODE_LEN as i32).contains(&cur) {
            return Err(CodecError::Corrupt("delta-coded length out of range"));
        }
        *len = cur as u8;
    }
    Ok(lengths)
}

fn encode_block(w: &mut MsbBitWriter, block: &[u8]) {
    let rle1 = rle1_encode(block);
    let bwt = bwt_forward(&rle1);
    let ranks = mtf_encode(&bwt, BWT_ALPHA);
    let symbols = zrle_encode(&ranks);

    let n_tables = num_tables_for(symbols.len());
    let (encoders, selectors) = build_tables(&symbols, n_tables);

    w.write_bits(rle1.len() as u32, 32);
    w.write_bits(symbols.len() as u32, 32);
    w.write_bits(n_tables as u32, 3);
    for enc in &encoders {
        write_delta_lengths(w, enc);
    }
    // Selectors, move-to-front then unary coded (bzip2's scheme): the
    // MTF rank r is written as r one-bits and a terminating zero.
    let mut mtf_order: Vec<u8> = (0..n_tables as u8).collect();
    for &sel in &selectors {
        let rank = mtf_order.iter().position(|&t| t == sel).expect("table");
        for _ in 0..rank {
            w.write_bits(1, 1);
        }
        w.write_bits(0, 1);
        mtf_order.copy_within(0..rank, 1);
        mtf_order[0] = sel;
    }
    for (group, &sel) in symbols.chunks(GROUP_SIZE).zip(&selectors) {
        let enc = &encoders[sel as usize];
        for &sym in group {
            enc.write_msb(w, sym as usize);
        }
    }
}

/// Largest RLE1 stream any encoder level can emit per block: the
/// biggest block size (900 KiB at `Best`) times the worst-case RLE1
/// expansion (a +1 count byte per 4-byte run, 5/4). A corrupt header
/// claiming more is rejected before any allocation scales with it.
const MAX_RLE1_LEN: usize = 900 * 1024 + 900 * 1024 / 4;

fn decode_block(r: &mut MsbBitReader<'_>, out: &mut Vec<u8>) -> Result<(), CodecError> {
    let rle1_len = r.read_bits(32)? as usize;
    let num_symbols = r.read_bits(32)? as usize;
    // The two 32-bit length fields are untrusted: bound them against
    // what the format and the remaining input could possibly produce
    // before they size any buffer.
    if rle1_len > MAX_RLE1_LEN {
        return Err(CodecError::Corrupt("block length exceeds format maximum"));
    }
    if num_symbols > rle1_len + 1 {
        // Every zero-run/literal symbol expands to at least one MTF
        // rank, and the rank stream is exactly rle1_len + 1 long.
        return Err(CodecError::Corrupt("symbol count exceeds block length"));
    }
    if num_symbols > r.remaining_bits() {
        // Every Huffman-coded symbol costs at least one input bit.
        return Err(CodecError::Corrupt("symbol count exceeds input size"));
    }
    let n_tables = r.read_bits(3)? as usize;
    if !(1..=MAX_TABLES).contains(&n_tables) {
        return Err(CodecError::Corrupt("bad Huffman table count"));
    }

    let mut decoders = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let lengths = read_delta_lengths(r)?;
        decoders.push(HuffmanDecoder::from_lengths(&lengths)?);
    }

    let n_groups = num_symbols.div_ceil(GROUP_SIZE);
    let mut mtf_order: Vec<u8> = (0..n_tables as u8).collect();
    let mut selectors = Vec::with_capacity(n_groups);
    for _ in 0..n_groups {
        let mut rank = 0usize;
        while r.read_bit()? == 1 {
            rank += 1;
            if rank >= n_tables {
                return Err(CodecError::Corrupt("selector rank out of range"));
            }
        }
        let sel = mtf_order[rank];
        mtf_order.copy_within(0..rank, 1);
        mtf_order[0] = sel;
        selectors.push(sel);
    }

    let mut symbols = Vec::with_capacity(num_symbols);
    for (g, &sel) in selectors.iter().enumerate() {
        let dec = &decoders[sel as usize];
        let in_group = GROUP_SIZE.min(num_symbols - g * GROUP_SIZE);
        for _ in 0..in_group {
            symbols.push(dec.decode_msb(r)?);
        }
    }

    let ranks = zrle_decode_bounded(&symbols, rle1_len + 1)?;
    if ranks.len() != rle1_len + 1 {
        return Err(CodecError::Corrupt("zero-run expansion length mismatch"));
    }
    if ranks.iter().any(|&rk| rk as usize >= BWT_ALPHA) {
        return Err(CodecError::Corrupt("MTF rank outside alphabet"));
    }
    let bwt = mtf_decode(&ranks, BWT_ALPHA);
    let rle1 = bwt_inverse(&bwt)?;
    out.extend_from_slice(&rle1_decode(&rle1));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bwt_known_example() {
        // "banana" + $ sorted rotations end-column is "annb$aa".
        let bwt = bwt_forward(b"banana");
        let rendered: Vec<char> = bwt
            .iter()
            .map(|&s| if s == 0 { '$' } else { (s - 1) as u8 as char })
            .collect();
        assert_eq!(rendered, vec!['a', 'n', 'n', 'b', '$', 'a', 'a']);
    }

    #[test]
    fn bwt_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"banana".to_vec(),
            b"mississippi".to_vec(),
            vec![0u8; 500],
            (0..=255u8).collect(),
            b"abcabcabcabc".repeat(50),
        ];
        for case in cases {
            let bwt = bwt_forward(&case);
            assert_eq!(bwt.len(), case.len() + 1);
            assert_eq!(bwt_inverse(&bwt).unwrap(), case, "case len {}", case.len());
        }
    }

    #[test]
    fn bwt_groups_symbols() {
        // On periodic text the BWT should have long runs — measure that
        // the number of adjacent changes drops versus the input.
        let data = b"the rain in spain stays mainly in the plain ".repeat(40);
        let bwt = bwt_forward(&data);
        let changes = |xs: &[u16]| xs.windows(2).filter(|w| w[0] != w[1]).count();
        let input_syms: Vec<u16> = data.iter().map(|&b| b as u16 + 1).collect();
        assert!(changes(&bwt) < changes(&input_syms) / 2);
    }

    #[test]
    fn bwt_inverse_rejects_garbage() {
        assert!(bwt_inverse(&[]).is_err());
        // No sentinel.
        assert!(bwt_inverse(&[5, 6, 7]).is_err());
        // Two sentinels.
        assert!(bwt_inverse(&[0, 5, 0]).is_err());
        // Symbol out of range.
        assert!(bwt_inverse(&[0, 300]).is_err());
    }

    fn round_trip(data: &[u8]) {
        for level in CompressionLevel::ALL {
            let codec = Bzip2Like::new(level);
            let packed = codec.compress(data);
            assert_eq!(
                codec.decompress(&packed).unwrap(),
                data,
                "level {level:?}, {} bytes",
                data.len()
            );
        }
    }

    #[test]
    fn codec_round_trips_basic_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"hello hello hello");
        round_trip(&vec![0xAB; 10_000]);
    }

    #[test]
    fn codec_round_trips_text() {
        let data = b"it was the best of times, it was the worst of times. ".repeat(1000);
        round_trip(&data);
        let packed = Bzip2Like::default().compress(&data);
        assert!(
            packed.len() * 10 < data.len(),
            "text should compress well: {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn codec_round_trips_pseudorandom_data() {
        let mut state = 42u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn codec_spans_multiple_blocks() {
        let codec = Bzip2Like::new(CompressionLevel::Fast);
        let data = b"block boundary test ".repeat(20_000); // 400 KB > 128 KiB blocks
        let packed = codec.compress(&data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupted_stream_is_rejected_or_harmless() {
        // A flipped bit must never yield silently wrong data: either
        // the decoder errors (structure or checksum) or the flip hit
        // dead space (e.g. a never-selected Huffman table) and the
        // output is still exactly right.
        let codec = Bzip2Like::default();
        let data = b"payload payload payload".repeat(100);
        let packed = codec.compress(&data);
        let mut rejected = 0usize;
        for pos in (0..packed.len()).step_by(7) {
            let mut bad = packed.clone();
            bad[pos] ^= 0x40;
            match codec.decompress(&bad) {
                Err(_) => rejected += 1,
                Ok(out) => assert_eq!(out, data, "silent corruption at byte {pos}"),
            }
        }
        // The overwhelming majority of flips must be detected.
        assert!(
            rejected * 10 >= (packed.len() / 7) * 8,
            "only {rejected} rejections"
        );
    }

    #[test]
    fn table_count_schedule_matches_bzip2() {
        assert_eq!(num_tables_for(0), 2);
        assert_eq!(num_tables_for(199), 2);
        assert_eq!(num_tables_for(200), 3);
        assert_eq!(num_tables_for(599), 3);
        assert_eq!(num_tables_for(600), 4);
        assert_eq!(num_tables_for(1199), 4);
        assert_eq!(num_tables_for(1200), 5);
        assert_eq!(num_tables_for(2400), 6);
        assert_eq!(num_tables_for(1_000_000), 6);
    }

    #[test]
    fn build_tables_covers_every_group_and_symbol() {
        // A bimodal stream: groups alternate between two disjoint
        // symbol distributions — exactly what multiple tables exploit.
        let mut symbols: Vec<u16> = Vec::new();
        for block in 0..40 {
            let base = if block % 2 == 0 { 2u16 } else { 120 };
            symbols.extend((0..50).map(|i| base + (i % 8) as u16));
        }
        let (encoders, selectors) = build_tables(&symbols, 3);
        assert_eq!(encoders.len(), 3);
        assert_eq!(selectors.len(), 40);
        assert!(selectors.iter().all(|&s| s < 3));
        // Every symbol must be encodable under every table (the +1
        // frequency floor guarantees it).
        for enc in &encoders {
            for sym in 0..ENTROPY_ALPHA {
                assert!(enc.len(sym) > 0, "symbol {sym} lacks a code");
            }
        }
        // The alternating halves should land on different tables.
        assert_ne!(selectors[0], selectors[1]);
    }

    #[test]
    fn multi_table_coding_beats_single_table_on_bimodal_blocks() {
        // Construct data whose BWT-MTF stream changes statistics along
        // the block: text-like section followed by binary-like section.
        let mut data = b"continuous prose with ordinary letter statistics. ".repeat(400);
        let mut state = 77u64;
        data.extend((0..20_000).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 59) as u8 // tiny alphabet, different distribution
        }));
        let packed = Bzip2Like::default().compress(&data);
        assert_eq!(Bzip2Like::default().decompress(&packed).unwrap(), data);

        // Single-table reference: force n_tables = 1 via a direct call.
        let rle1 = rle1_encode(&data);
        let bwt = bwt_forward(&rle1);
        let ranks = mtf_encode(&bwt, BWT_ALPHA);
        let symbols = zrle_encode(&ranks);
        let (encoders, _) = build_tables(&symbols, 1);
        let single_payload_bits: u64 = symbols
            .iter()
            .map(|&s| encoders[0].len(s as usize) as u64)
            .sum();
        let (encoders, selectors) = build_tables(&symbols, num_tables_for(symbols.len()));
        let multi_payload_bits: u64 = symbols
            .chunks(GROUP_SIZE)
            .zip(&selectors)
            .flat_map(|(g, &sel)| g.iter().map(move |&s| (sel, s)))
            .map(|(sel, s)| encoders[sel as usize].len(s as usize) as u64)
            .sum();
        assert!(
            multi_payload_bits < single_payload_bits,
            "multi {multi_payload_bits} vs single {single_payload_bits} bits"
        );
    }

    #[test]
    fn delta_lengths_round_trip() {
        let freqs: Vec<u64> = (0..ENTROPY_ALPHA as u64).map(|i| 1 + i * i % 511).collect();
        let enc = HuffmanEncoder::from_freqs(&freqs, MAX_CODE_LEN);
        let mut w = MsbBitWriter::new();
        write_delta_lengths(&mut w, &enc);
        let bytes = w.finish();
        // Far below the 5-bit-per-symbol fixed encoding.
        assert!(bytes.len() * 8 < ENTROPY_ALPHA * 5);
        let mut r = MsbBitReader::new(&bytes);
        let lengths = read_delta_lengths(&mut r).unwrap();
        assert_eq!(&lengths[..], enc.lengths());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let codec = Bzip2Like::default();
        let packed = codec.compress(b"something long enough to truncate meaningfully");
        for cut in [0, 2, packed.len() / 2] {
            assert!(codec.decompress(&packed[..cut]).is_err(), "cut {cut}");
        }
    }
}
