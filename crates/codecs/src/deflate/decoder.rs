//! DEFLATE decoder (inflate): bit stream → bytes (RFC 1951).

use crate::bitio::LsbBitReader;
use crate::codec::CodecError;
use crate::huffman::{FastDecoder, HuffmanDecoder};

use super::tables::*;

/// Decompress a raw DEFLATE stream (no zlib wrapper).
///
/// `size_hint` pre-sizes the output buffer when the caller knows the
/// decompressed size (the zlib wrapper does not carry one; ISOBAR's
/// container does). The hint may come from an untrusted length field,
/// so the pre-allocation is capped at DEFLATE's maximum expansion of
/// the actual input (1 bit per output byte plus slack, ~1032×): a lying
/// hint costs only incremental growth while decoding, never an
/// up-front allocation the stream cannot back.
pub fn inflate_raw(data: &[u8], size_hint: usize) -> Result<Vec<u8>, CodecError> {
    let mut r = LsbBitReader::new(data);
    let max_expansion = data.len().saturating_mul(1040).saturating_add(256);
    let mut out = Vec::with_capacity(size_hint.min(max_expansion));
    inflate_into(&mut r, &mut out)?;
    Ok(out)
}

/// Decompress from an existing reader into `out`; leaves the reader
/// positioned after the final block (byte-aligned trailing data such as
/// checksums can then be read).
pub fn inflate_into(r: &mut LsbBitReader<'_>, out: &mut Vec<u8>) -> Result<(), CodecError> {
    loop {
        let is_final = r.read_bit()? == 1;
        match r.read_bits(2)? {
            0b00 => read_stored_block(r, out)?,
            0b01 => {
                let lit = FastDecoder::from_lengths(&fixed_litlen_lengths())?;
                let dist = FastDecoder::from_lengths(&fixed_dist_lengths())?;
                read_compressed_block(r, out, &lit, &dist)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_header(r)?;
                read_compressed_block(r, out, &lit, &dist)?;
            }
            _ => return Err(CodecError::Corrupt("reserved block type 11")),
        }
        if is_final {
            return Ok(());
        }
    }
}

fn read_stored_block(r: &mut LsbBitReader<'_>, out: &mut Vec<u8>) -> Result<(), CodecError> {
    r.align_to_byte();
    let mut header = [0u8; 4];
    r.read_bytes(&mut header)?;
    let len = u16::from_le_bytes([header[0], header[1]]);
    let nlen = u16::from_le_bytes([header[2], header[3]]);
    if len != !nlen {
        return Err(CodecError::Corrupt("stored block LEN/NLEN mismatch"));
    }
    let start = out.len();
    out.resize(start + len as usize, 0);
    r.read_bytes(&mut out[start..])?;
    Ok(())
}

fn read_dynamic_header(r: &mut LsbBitReader<'_>) -> Result<(FastDecoder, FastDecoder), CodecError> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > NUM_LITLEN || hdist > NUM_DIST + 2 {
        return Err(CodecError::Corrupt("dynamic header counts out of range"));
    }

    let mut cl_lengths = [0u8; NUM_CODELEN];
    for &sym in CODELEN_ORDER.iter().take(hclen) {
        cl_lengths[sym] = r.read_bits(3)? as u8;
    }
    let cl_decoder = HuffmanDecoder::from_lengths(&cl_lengths)?;

    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0usize;
    while i < lengths.len() {
        let sym = cl_decoder.decode_lsb(r)?;
        match sym {
            0..=15 => {
                lengths[i] = sym as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(CodecError::Corrupt("repeat code with no previous length"));
                }
                let prev = lengths[i - 1];
                let run = r.read_bits(2)? as usize + 3;
                fill_run(&mut lengths, &mut i, prev, run)?;
            }
            17 => {
                let run = r.read_bits(3)? as usize + 3;
                fill_run(&mut lengths, &mut i, 0, run)?;
            }
            18 => {
                let run = r.read_bits(7)? as usize + 11;
                fill_run(&mut lengths, &mut i, 0, run)?;
            }
            _ => return Err(CodecError::Corrupt("invalid code-length symbol")),
        }
    }

    let lit = FastDecoder::from_lengths(&lengths[..hlit])?;
    let dist = FastDecoder::from_lengths(&lengths[hlit..])?;
    Ok((lit, dist))
}

fn fill_run(lengths: &mut [u8], i: &mut usize, value: u8, run: usize) -> Result<(), CodecError> {
    if *i + run > lengths.len() {
        return Err(CodecError::Corrupt("code-length run overflows header"));
    }
    lengths[*i..*i + run].fill(value);
    *i += run;
    Ok(())
}

fn read_compressed_block(
    r: &mut LsbBitReader<'_>,
    out: &mut Vec<u8>,
    lit: &FastDecoder,
    dist: &FastDecoder,
) -> Result<(), CodecError> {
    loop {
        let sym = lit.decode_lsb(r)? as usize;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = sym - 257;
                let len =
                    LENGTH_BASE[idx] as usize + r.read_bits(LENGTH_EXTRA[idx] as u32)? as usize;
                let dsym = dist.decode_lsb(r)? as usize;
                if dsym >= NUM_DIST {
                    return Err(CodecError::Corrupt("invalid distance symbol"));
                }
                let d = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym] as u32)? as usize;
                if d > out.len() {
                    return Err(CodecError::Corrupt("distance reaches before output start"));
                }
                let start = out.len() - d;
                out.reserve(len);
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(CodecError::Corrupt("invalid literal/length symbol")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::encoder::deflate_raw;
    use super::*;
    use crate::codec::CompressionLevel;

    fn round_trip(data: &[u8]) {
        for level in CompressionLevel::ALL {
            let packed = deflate_raw(data, level);
            let unpacked = inflate_raw(&packed, data.len()).unwrap();
            assert_eq!(unpacked, data, "level {level:?}, {} bytes", data.len());
        }
    }

    #[test]
    fn round_trips_basic_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"hello, hello, hello world");
        round_trip(&[0u8; 100_000]);
    }

    #[test]
    fn round_trips_text_like_data() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(2000);
        round_trip(&data);
    }

    #[test]
    fn round_trips_pseudorandom_data() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..300_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn round_trips_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(70_000).collect();
        round_trip(&data);
    }

    #[test]
    fn round_trips_multi_block_input() {
        // Force more than one 65536-token block with incompressible data.
        let mut state = 1u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn truncated_stream_reports_eof() {
        let packed = deflate_raw(
            b"some reasonably long input to compress",
            CompressionLevel::Default,
        );
        for cut in [0, 1, packed.len() / 2, packed.len() - 1] {
            let err = inflate_raw(&packed[..cut], 0).unwrap_err();
            assert!(
                matches!(err, CodecError::UnexpectedEof | CodecError::Corrupt(_)),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn reserved_block_type_is_rejected() {
        // BFINAL=1, BTYPE=11.
        let err = inflate_raw(&[0b0000_0111], 0).unwrap_err();
        assert_eq!(err, CodecError::Corrupt("reserved block type 11"));
    }

    #[test]
    fn stored_block_len_nlen_mismatch_is_rejected() {
        // BFINAL=1, BTYPE=00, then bogus LEN/NLEN.
        let stream = [0b0000_0001, 0x05, 0x00, 0x00, 0x00];
        let err = inflate_raw(&stream, 0).unwrap_err();
        assert_eq!(err, CodecError::Corrupt("stored block LEN/NLEN mismatch"));
    }

    #[test]
    fn distance_before_output_start_is_rejected() {
        // Hand-build a fixed-Huffman block whose first token is a match:
        // any distance then reaches before the start of output.
        use crate::bitio::LsbBitWriter;
        use crate::huffman::HuffmanEncoder;
        let lit = HuffmanEncoder::from_lengths(&fixed_litlen_lengths());
        let dist = HuffmanEncoder::from_lengths(&fixed_dist_lengths());
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        lit.write_lsb(&mut w, 257); // length 3, no extra bits
        dist.write_lsb(&mut w, 0); // distance 1, no extra bits
        lit.write_lsb(&mut w, 256);
        let stream = w.finish();
        let err = inflate_raw(&stream, 0).unwrap_err();
        assert_eq!(
            err,
            CodecError::Corrupt("distance reaches before output start")
        );
    }
}
