//! XXH64 bulk stripe kernel: 4-lane processing of 32-byte stripes.
//!
//! XXH64's stripe recurrence `v = rotl31(v + x·P2) · P1` is serial
//! across stripes *within* each of the four lanes; the lanes themselves
//! are the only parallelism the format offers. On x86-64 a scalar
//! 64×64 multiply has 3-cycle latency at 1/cycle throughput, so four
//! independent lane chains already saturate the multiply ports — while
//! AVX2 has no 64×64 vector multiply, and emulating one from three
//! 32×32 `vpmuludq`s plus shifts makes each stripe's dependency chain
//! about 3× longer than scalar. Every tier therefore routes to the same
//! unrolled 4-lane kernel; the tier parameter keeps the dispatch
//! surface uniform (and is where an XXH3-style wide hash would hook in
//! later). What the kernel buys over the naive loop is **bulk**
//! consumption: whole buffers per call, two stripes in flight per
//! iteration, and no per-stripe copies in the streaming hasher.

use crate::KernelTier;

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn rd(chunk: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(chunk[at..at + 8].try_into().expect("8 bytes"))
}

/// Consume every whole 32-byte stripe of `data` into the four lane
/// accumulators, returning the number of bytes consumed (a multiple of
/// 32; the caller buffers the remainder).
pub fn consume_stripes(_tier: KernelTier, v: &mut [u64; 4], data: &[u8]) -> usize {
    let [mut v1, mut v2, mut v3, mut v4] = *v;
    let mut pairs = data.chunks_exact(64);
    for p in pairs.by_ref() {
        v1 = round(v1, rd(p, 0));
        v2 = round(v2, rd(p, 8));
        v3 = round(v3, rd(p, 16));
        v4 = round(v4, rd(p, 24));
        v1 = round(v1, rd(p, 32));
        v2 = round(v2, rd(p, 40));
        v3 = round(v3, rd(p, 48));
        v4 = round(v4, rd(p, 56));
    }
    let rem = pairs.remainder();
    if rem.len() >= 32 {
        v1 = round(v1, rd(rem, 0));
        v2 = round(v2, rd(rem, 8));
        v3 = round(v3, rd(rem, 16));
        v4 = round(v4, rd(rem, 24));
    }
    *v = [v1, v2, v3, v4];
    data.len() - data.len() % 32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testable_tiers;

    /// Reference: one stripe at a time, exactly as the spec writes it.
    fn reference(v: &mut [u64; 4], data: &[u8]) -> usize {
        let mut i = 0;
        while i + 32 <= data.len() {
            v[0] = round(v[0], rd(&data[i..], 0));
            v[1] = round(v[1], rd(&data[i..], 8));
            v[2] = round(v[2], rd(&data[i..], 16));
            v[3] = round(v[3], rd(&data[i..], 24));
            i += 32;
        }
        i
    }

    #[test]
    fn matches_reference_for_all_lengths() {
        let data: Vec<u8> = (0..400u32)
            .map(|i| (i.wrapping_mul(97) >> 2) as u8)
            .collect();
        for tier in testable_tiers() {
            for len in 0..=data.len() {
                let mut want = [1u64, 2, 3, 4];
                let want_used = reference(&mut want, &data[..len]);
                let mut got = [1u64, 2, 3, 4];
                let got_used = consume_stripes(tier, &mut got, &data[..len]);
                assert_eq!(got, want, "{tier} len {len}");
                assert_eq!(got_used, want_used, "{tier} len {len}");
            }
        }
    }

    #[test]
    fn consumed_is_always_stripe_aligned() {
        let data = vec![0xA5u8; 100];
        let mut v = [0u64; 4];
        assert_eq!(consume_stripes(KernelTier::Scalar, &mut v, &data), 96);
        assert_eq!(consume_stripes(KernelTier::Scalar, &mut v, &data[..31]), 0);
    }
}
