//! Criterion benches for the end-to-end ISOBAR pipeline.
//!
//! Compression under both preferences plus decompression, on one
//! paper-sized chunk of a hard-to-compress dataset. These back the
//! ISOBAR columns of Tables V and IX.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use isobar::{IsobarCompressor, IsobarOptions, Preference};
use isobar_datasets::catalog;

const ELEMENTS: usize = 375_000;

fn bench_pipeline(c: &mut Criterion) {
    let ds = catalog::spec("gts_chkp_zion")
        .expect("catalog entry")
        .generate(ELEMENTS, 7);
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Bytes(ds.bytes.len() as u64));
    group.sample_size(10);

    for (label, pref) in [("speed", Preference::Speed), ("ratio", Preference::Ratio)] {
        let isobar = IsobarCompressor::with_preference(pref);
        group.bench_with_input(BenchmarkId::new("compress", label), &ds, |b, ds| {
            b.iter(|| isobar.compress(&ds.bytes, ds.width()).expect("aligned"))
        });
        let packed = isobar.compress(&ds.bytes, ds.width()).expect("aligned");
        group.bench_with_input(BenchmarkId::new("decompress", label), &packed, |b, p| {
            b.iter(|| isobar.decompress(p).expect("own container"))
        });
    }

    // Parallel-chunk extension (not part of the paper's single-core
    // numbers; included as an ablation of the chunk pipeline).
    let parallel = IsobarCompressor::new(IsobarOptions {
        preference: Preference::Speed,
        parallel: true,
        chunk_elements: 93_750, // 4 chunks over one paper chunk
        ..Default::default()
    });
    group.bench_with_input(
        BenchmarkId::new("compress", "speed-parallel"),
        &ds,
        |b, ds| b.iter(|| parallel.compress(&ds.bytes, ds.width()).expect("aligned")),
    );
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
