//! Table IV — ISOBAR-analyzer's predictions.
//!
//! For all 24 datasets: is it hard-to-compress, what fraction of bytes
//! is hard, and is it improvable? Compared against the paper's
//! classification; the final line counts agreements.

use isobar::Analyzer;
use isobar_bench::*;
use isobar_datasets::catalog;

fn main() {
    banner("Table IV: ISOBAR-analyzer's predictions");
    println!(
        "{:<15} {:>5} {:>11} {:>12}   (paper: HTC%, improvable)",
        "Dataset", "HTC?", "HTC bytes%", "Improvable?"
    );
    let analyzer = Analyzer::default();
    let mut agreements = 0usize;
    let specs = catalog::all();
    for spec in &specs {
        let ds = generate(spec);
        let sel = analyzer
            .analyze(&ds.bytes, ds.width())
            .expect("aligned data");
        let htc = sel.htc_pct() > 0.0;
        let improvable = sel.is_improvable();
        let agrees = improvable == spec.paper_improvable
            && (sel.htc_pct() - spec.paper_htc_pct).abs() < 1e-9;
        agreements += agrees as usize;
        println!(
            "{:<15} {:>5} {:>11.1} {:>12}   ({:>5.1}, {})",
            spec.name,
            if htc { "yes" } else { "no" },
            sel.htc_pct(),
            if improvable { "yes" } else { "no" },
            spec.paper_htc_pct,
            if spec.paper_improvable { "yes" } else { "no" },
        );
    }
    println!();
    println!(
        "classification agreement with the paper: {}/{} datasets",
        agreements,
        specs.len()
    );
    let improvable = specs.iter().filter(|s| s.paper_improvable).count();
    println!(
        "paper: 19 of 24 improvable; here: {improvable} of {} expected",
        specs.len()
    );
}
