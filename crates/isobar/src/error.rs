//! Error type shared by the ISOBAR pipeline.

use isobar_codecs::CodecError;
use std::error::Error;
use std::fmt;

/// Errors produced while compressing or decompressing ISOBAR streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsobarError {
    /// Input length is not a multiple of the element width.
    MisalignedInput {
        /// Input length in bytes.
        len: usize,
        /// Element width in bytes.
        width: usize,
    },
    /// Element width outside the supported 1..=64 range.
    BadWidth(usize),
    /// The container is structurally invalid.
    Corrupt(&'static str),
    /// The container ended prematurely.
    Truncated,
    /// The embedded solver failed to decode its stream.
    Codec(CodecError),
    /// Whole-stream integrity check failed after reassembly.
    ChecksumMismatch,
}

impl fmt::Display for IsobarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsobarError::MisalignedInput { len, width } => {
                write!(
                    f,
                    "input of {len} bytes is not a multiple of element width {width}"
                )
            }
            IsobarError::BadWidth(w) => write!(f, "unsupported element width {w}"),
            IsobarError::Corrupt(what) => write!(f, "corrupt ISOBAR container: {what}"),
            IsobarError::Truncated => write!(f, "truncated ISOBAR container"),
            IsobarError::Codec(e) => write!(f, "solver error: {e}"),
            IsobarError::ChecksumMismatch => write!(f, "reassembled data failed integrity check"),
        }
    }
}

impl Error for IsobarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsobarError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for IsobarError {
    fn from(e: CodecError) -> Self {
        IsobarError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = IsobarError::MisalignedInput { len: 10, width: 8 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("8"));
        assert!(IsobarError::Truncated.to_string().contains("truncated"));
    }

    #[test]
    fn codec_errors_are_wrapped_with_source() {
        let e: IsobarError = CodecError::UnexpectedEof.into();
        assert!(matches!(e, IsobarError::Codec(_)));
        assert!(Error::source(&e).is_some());
    }
}
