//! Workspace-level integration: the umbrella crate's re-exports work
//! together across crate boundaries, end to end.

use isobar_suite::isobar::{
    Analyzer, EupaSelector, IsobarCompressor, IsobarOptions, IsobarReader, IsobarWriter, Preference,
};
use isobar_suite::isobar_codecs::{bwt::Bzip2Like, deflate::Deflate, Codec};
use isobar_suite::isobar_datasets::{catalog, stats};
use isobar_suite::isobar_float_codecs::{Dims, Fpc, FpzipLike};
use isobar_suite::isobar_linearize::{apply_permutation, hilbert_order};
use isobar_suite::isobar_store::{StoreReader, StoreWriter};
use std::io::Write;

fn options() -> IsobarOptions {
    IsobarOptions {
        preference: Preference::Speed,
        chunk_elements: 20_000,
        eupa: EupaSelector {
            sample_elements: 1024,
            sample_blocks: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn every_public_surface_composes() {
    // Dataset substrate → statistics.
    let ds = catalog::spec("flash_gamc")
        .expect("catalog")
        .generate(40_000, 77);
    let st = stats::dataset_stats(&ds);
    assert_eq!(st.elements, 40_000);

    // Analyzer on the generated data.
    let sel = Analyzer::default().analyze(&ds.bytes, ds.width()).unwrap();
    assert!(sel.is_improvable());

    // Batch pipeline.
    let isobar = IsobarCompressor::new(options());
    let packed = isobar.compress(&ds.bytes, ds.width()).unwrap();
    assert_eq!(isobar.decompress(&packed).unwrap(), ds.bytes);

    // Streaming pipeline over the same bytes.
    let mut writer = IsobarWriter::new(Vec::new(), ds.width(), options()).unwrap();
    writer.write_all(&ds.bytes).unwrap();
    let stream = writer.finish().unwrap();
    let restored = IsobarReader::new(&stream[..])
        .unwrap()
        .read_to_vec()
        .unwrap();
    assert_eq!(restored, ds.bytes);

    // Standalone solvers and float baselines on the same bytes.
    for codec in [&Deflate::default() as &dyn Codec, &Bzip2Like::default()] {
        assert_eq!(
            codec.decompress(&codec.compress(&ds.bytes)).unwrap(),
            ds.bytes
        );
    }
    let fpc = Fpc::default();
    assert_eq!(fpc.decompress(&fpc.compress(&ds.bytes)).unwrap(), ds.bytes);
    let fpz = FpzipLike;
    let fz = fpz
        .compress_f64(&ds.bytes, Dims::linear(ds.element_count()))
        .unwrap();
    assert_eq!(fpz.decompress(&fz).unwrap(), ds.bytes);

    // Linearization robustness: analyzer verdict is order-free.
    let hilbert = apply_permutation(&ds.bytes, ds.width(), &hilbert_order(ds.element_count()));
    let sel_h = Analyzer::default().analyze(&hilbert, ds.width()).unwrap();
    assert_eq!(sel.bits(), sel_h.bits());

    // Checkpoint store over the pipeline.
    let path = std::env::temp_dir().join(format!("isobar-smoke-{}.isst", std::process::id()));
    let mut store = StoreWriter::create(&path, options()).unwrap();
    store.put(0, "gamc", &ds.bytes, ds.width()).unwrap();
    store.close().unwrap();
    let reader = StoreReader::open(&path).unwrap();
    assert_eq!(reader.get(0, "gamc").unwrap(), ds.bytes);
    std::fs::remove_file(&path).ok();
}

#[test]
fn preconditioning_beats_standalone_on_the_motivating_case() {
    // The one-line version of the paper: on hard-to-compress data,
    // ISOBAR + zlib strictly dominates zlib alone on size.
    let ds = catalog::spec("gts_phi_l")
        .expect("catalog")
        .generate(60_000, 1);
    let standalone = Deflate::default().compress(&ds.bytes).len();
    let preconditioned = IsobarCompressor::new(options())
        .compress(&ds.bytes, ds.width())
        .unwrap()
        .len();
    assert!(
        preconditioned < standalone,
        "isobar {preconditioned} vs zlib {standalone}"
    );
}
