//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small slice of `rand` it actually uses:
//! seedable deterministic generators (`StdRng`), uniform sampling
//! (`Rng::gen`, `Rng::gen_range`), and Fisher–Yates shuffling
//! (`seq::SliceRandom`). The generator is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `rand`'s ChaCha-based
//! `StdRng`, which is fine because every consumer in this workspace
//! treats the stream as an arbitrary reproducible source, never as a
//! compatibility surface.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (the only constructor this
/// workspace uses; upstream's `from_seed`/`from_entropy` are omitted).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly over their whole domain via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Take high bits: xoshiro's upper bits are the strongest.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection from the top of the
/// 64-bit space — unbiased, and the loop almost never iterates.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, small, and statistically strong; the
    /// workspace standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Fisher–Yates shuffle over slices.
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=6);
            assert!(w <= 6);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
