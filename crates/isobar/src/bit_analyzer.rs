//! Bit-level analysis — the alternative §II.A argues *against*.
//!
//! The paper chooses byte-level analysis for two reasons: general
//! compressors entropy-code bytes, and byte histograms have "greater
//! variance of entropy" than per-bit marginals, making identification
//! more accurate and faster. This module implements the bit-level
//! alternative so the claim can be tested (see the
//! `ablation_granularity` bench):
//!
//! * a bit position is *predictable* when the probability of its
//!   dominant value exceeds `0.5 + epsilon` (Fig. 1's view);
//! * a byte-column is classified compressible when any of its 8 bits is
//!   predictable.
//!
//! The known blind spot, demonstrated in the tests: a byte-column
//! alternating between two complementary values (e.g. `0x55`/`0xAA`)
//! is perfectly compressible (1 bit of entropy per byte), yet *every
//! one of its bits* is a marginal coin flip — bit-level analysis
//! misclassifies it as noise, byte-level analysis does not.

use crate::analyzer::ColumnSelection;
use crate::error::IsobarError;

/// Default dominance margin: a bit is predictable when its dominant
/// value occurs with probability ≥ 0.5 + ε.
pub const DEFAULT_EPSILON: f64 = 0.05;

/// Bit-granularity analyzer (ablation baseline).
#[derive(Debug, Clone, Copy)]
pub struct BitAnalyzer {
    epsilon: f64,
}

impl Default for BitAnalyzer {
    fn default() -> Self {
        BitAnalyzer {
            epsilon: DEFAULT_EPSILON,
        }
    }
}

impl BitAnalyzer {
    /// Create an analyzer with a custom dominance margin ε ∈ (0, 0.5).
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 0.5);
        BitAnalyzer { epsilon }
    }

    /// Probability of the dominant value at each bit position
    /// (bit index = column·8 + bit-within-byte, LSB first).
    pub fn bit_probabilities(&self, data: &[u8], width: usize) -> Result<Vec<f64>, IsobarError> {
        if width == 0 || width > 64 {
            return Err(IsobarError::BadWidth(width));
        }
        if !data.len().is_multiple_of(width) {
            return Err(IsobarError::MisalignedInput {
                len: data.len(),
                width,
            });
        }
        let n = data.len() / width;
        let mut ones = vec![0u64; width * 8];
        for element in data.chunks_exact(width) {
            for (c, &byte) in element.iter().enumerate() {
                // Unrolled per-bit counting keeps this within ~2× of
                // the byte analyzer; a naive inner loop is ~8×.
                for bit in 0..8 {
                    ones[c * 8 + bit] += ((byte >> bit) & 1) as u64;
                }
            }
        }
        Ok(ones
            .iter()
            .map(|&count| {
                if n == 0 {
                    1.0
                } else {
                    let p = count as f64 / n as f64;
                    p.max(1.0 - p)
                }
            })
            .collect())
    }

    /// Classify byte-columns from bit marginals: a column is
    /// compressible when any of its bits is predictable.
    pub fn analyze(&self, data: &[u8], width: usize) -> Result<ColumnSelection, IsobarError> {
        let probs = self.bit_probabilities(data, width)?;
        let bits = probs
            .chunks(8)
            .map(|byte_bits| byte_bits.iter().any(|&p| p >= 0.5 + self.epsilon))
            .collect();
        Ok(ColumnSelection::new(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// width 4: [constant, uniform noise, counter-low, complementary pair]
    fn demo_data(n: usize) -> Vec<u8> {
        let mut state = 0x1234_5678_9ABC_DEF5u64;
        (0..n)
            .flat_map(|i| {
                let r = xorshift(&mut state);
                [
                    0x5A,
                    (r >> 40) as u8,
                    (i % 32) as u8,
                    if r & (1 << 20) == 0 { 0x55 } else { 0xAA },
                ]
            })
            .collect()
    }

    #[test]
    fn bit_probabilities_match_expectations() {
        let data = demo_data(100_000);
        let probs = BitAnalyzer::default().bit_probabilities(&data, 4).unwrap();
        // Constant column: all bits certain.
        assert!(probs[0..8].iter().all(|&p| p == 1.0));
        // Uniform column: all bits ≈ 0.5.
        assert!(probs[8..16].iter().all(|&p| p < 0.52));
        // Complementary pair column: every bit is a marginal coin flip
        // even though the byte has 1 bit of entropy.
        assert!(
            probs[24..32].iter().all(|&p| p < 0.52),
            "{:?}",
            &probs[24..32]
        );
    }

    #[test]
    fn bit_level_agrees_on_clear_cut_columns() {
        let data = demo_data(100_000);
        let bit_sel = BitAnalyzer::default().analyze(&data, 4).unwrap();
        assert!(bit_sel.bits()[0], "constant column is compressible");
        assert!(!bit_sel.bits()[1], "uniform column is noise");
        assert!(bit_sel.bits()[2], "counter column is compressible");
    }

    #[test]
    fn bit_level_misclassifies_complementary_pairs_byte_level_does_not() {
        // The §II.A argument, concretely: byte-level sees two fat bins
        // (0x55, 0xAA each at p = 0.5 ≫ τ/256) — compressible. The bit
        // marginals are all 0.5 — bit-level calls it noise.
        let data = demo_data(100_000);
        let byte_sel = Analyzer::default().analyze(&data, 4).unwrap();
        let bit_sel = BitAnalyzer::default().analyze(&data, 4).unwrap();
        assert!(byte_sel.bits()[3], "byte-level: compressible (correct)");
        assert!(!bit_sel.bits()[3], "bit-level: noise (the blind spot)");
    }

    #[test]
    fn rejects_bad_shapes_like_the_byte_analyzer() {
        let analyzer = BitAnalyzer::default();
        assert!(analyzer.analyze(&[0u8; 10], 4).is_err());
        assert!(analyzer.analyze(&[], 0).is_err());
    }

    #[test]
    fn empty_input_is_all_predictable_vacuously() {
        let sel = BitAnalyzer::default().analyze(&[], 8).unwrap();
        assert_eq!(sel.width(), 8);
        assert!(sel.bits().iter().all(|&b| b));
    }
}
