//! Scratch-reuse equivalence: the allocation-free entry points must be
//! byte-identical to their allocating counterparts, no matter what a
//! previous call left behind in the scratch.
//!
//! This is the contract stated on [`Codec::compress_into`]: the serial
//! pipeline, the parallel workers, and the streaming writer all hold
//! one scratch across many chunks, so any state leakage between calls
//! would corrupt real containers. Every codec id is driven through the
//! same sequence of dissimilar inputs with a single scratch, and each
//! output is compared against a fresh `compress` call.

use isobar_codecs::{codec_for, CodecId, CodecScratch, CompressionLevel};
use proptest::prelude::*;

/// Inputs with deliberately different shapes so consecutive calls leave
/// very different state in the scratch (hash chains, Huffman tables,
/// token buffers, output capacity).
fn input_sequence() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let one = prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048),
        proptest::collection::vec(prop_oneof![Just(0u8), Just(7), Just(255)], 0..2048),
        proptest::collection::vec((any::<u8>(), 1usize..48), 0..64).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(b, n)| std::iter::repeat_n(b, n))
                .collect()
        }),
        Just(Vec::new()),
    ];
    proptest::collection::vec(one, 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compress_into_with_reused_scratch_matches_compress(
        inputs in input_sequence(),
        codec_idx in 0usize..2,
        level_idx in 0usize..3,
    ) {
        let id = [CodecId::Deflate, CodecId::Bzip2Like][codec_idx];
        let codec = codec_for(id, CompressionLevel::ALL[level_idx]);
        let mut scratch = CodecScratch::new();
        // Dirty output buffer: stale bytes must never survive a call.
        let mut out = vec![0xEE; 513];
        for (i, data) in inputs.iter().enumerate() {
            codec.compress_into(data, &mut out, &mut scratch);
            let fresh = codec.compress(data);
            prop_assert_eq!(&out, &fresh, "{} input #{} diverged", id, i);
        }
    }

    #[test]
    fn decompress_into_with_reused_scratch_matches_decompress(
        inputs in input_sequence(),
        codec_idx in 0usize..2,
        level_idx in 0usize..3,
    ) {
        let id = [CodecId::Deflate, CodecId::Bzip2Like][codec_idx];
        let codec = codec_for(id, CompressionLevel::ALL[level_idx]);
        let mut scratch = CodecScratch::new();
        let mut out = vec![0xEE; 513];
        for (i, data) in inputs.iter().enumerate() {
            let packed = codec.compress(data);
            codec.decompress_into(&packed, &mut out, &mut scratch).unwrap();
            prop_assert_eq!(&out, data, "{} input #{} diverged", id, i);
        }
    }
}

/// Deterministic smoke check: one scratch across every codec and level,
/// interleaved, with outputs compared to fresh compress calls. This
/// covers the cross-codec sharing (one `CodecScratch` serves both
/// solvers) that the per-codec property tests don't interleave.
#[test]
fn one_scratch_serves_both_codecs_interleaved() {
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut noise = |n: usize| -> Vec<u8> {
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect()
    };
    let inputs = [
        b"structured structured structured".repeat(200),
        noise(10_000),
        vec![0u8; 5_000],
        noise(333),
    ];
    let mut scratch = CodecScratch::new();
    let mut out = Vec::new();
    for level in CompressionLevel::ALL {
        for id in [CodecId::Deflate, CodecId::Bzip2Like] {
            let codec = codec_for(id, level);
            for data in &inputs {
                codec.compress_into(data, &mut out, &mut scratch);
                assert_eq!(out, codec.compress(data), "{id} at {level}");
                let packed = std::mem::take(&mut out);
                codec
                    .decompress_into(&packed, &mut out, &mut scratch)
                    .unwrap();
                assert_eq!(&out, data, "{id} at {level} round trip");
            }
        }
    }
}
