//! Bit-granular input/output streams.
//!
//! DEFLATE packs bits LSB-first within each byte (RFC 1951 §3.1.1) while
//! bzip2-style streams pack MSB-first, so both orders are provided. The
//! writers accumulate into a 64-bit register and spill whole bytes, which
//! keeps the per-bit cost to a couple of shifts; the readers mirror that.

use crate::codec::CodecError;

/// Writes bits LSB-first within each output byte (DEFLATE order).
#[derive(Debug, Default)]
pub struct LsbBitWriter {
    out: Vec<u8>,
    /// Pending bits, least significant bit is the oldest unwritten bit.
    acc: u64,
    /// Number of valid bits in `acc` (always < 32 between calls).
    nbits: u32,
}

impl LsbBitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer whose output buffer starts with `prefix` bytes.
    pub fn with_prefix(prefix: Vec<u8>) -> Self {
        LsbBitWriter {
            out: prefix,
            acc: 0,
            nbits: 0,
        }
    }

    /// Append the low `count` bits of `bits` (0 ≤ count ≤ 32).
    ///
    /// Bytes are spilled four at a time: the accumulator holds up to 31
    /// pending bits between calls, so a 32-bit write always fits and the
    /// flush is a single 4-byte copy instead of a per-byte loop. This is
    /// the hottest call in the encoder (one or two per token).
    #[inline]
    pub fn write_bits(&mut self, bits: u32, count: u32) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || bits < (1u32 << count));
        debug_assert!(self.nbits < 32);
        self.acc |= (bits as u64) << self.nbits;
        self.nbits += count;
        if self.nbits >= 32 {
            self.out.extend_from_slice(&(self.acc as u32).to_le_bytes());
            self.acc >>= 32;
            self.nbits -= 32;
        }
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        // Bits above `nbits` in the accumulator are always zero, so the
        // partial byte comes out zero-padded.
        let bytes = (self.nbits as usize).div_ceil(8);
        self.out.extend_from_slice(&self.acc.to_le_bytes()[..bytes]);
        self.acc = 0;
        self.nbits = 0;
    }

    /// Append whole bytes; the stream must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Total bits written so far (including pending sub-byte bits).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }

    /// Flush any partial byte and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

/// Reads bits LSB-first within each byte (DEFLATE order).
#[derive(Debug)]
pub struct LsbBitReader<'a> {
    data: &'a [u8],
    /// Index of the next byte to load into `acc`.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> LsbBitReader<'a> {
    /// Wrap a byte slice for bit-level reading.
    pub fn new(data: &'a [u8]) -> Self {
        LsbBitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `count` bits (0 ≤ count ≤ 32), LSB of the result is the
    /// first bit of the stream.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u32, CodecError> {
        debug_assert!(count <= 32);
        if self.nbits < count {
            self.refill();
            if self.nbits < count {
                return Err(CodecError::UnexpectedEof);
            }
        }
        let mask = if count == 32 {
            u64::MAX >> 32
        } else {
            (1u64 << count) - 1
        };
        let bits = (self.acc & mask) as u32;
        self.acc >>= count;
        self.nbits -= count;
        Ok(bits)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, CodecError> {
        self.read_bits(1)
    }

    /// Peek at the next `count` bits (≤ 16) without consuming them.
    ///
    /// Past the end of the stream the missing bits read as zero; the
    /// caller detects true over-reads when it later `consume`s. This is
    /// the contract table-driven Huffman decoders need — they peek a
    /// fixed window that may straddle the stream's last code.
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> u32 {
        debug_assert!(count <= 16);
        if self.nbits < count {
            self.refill();
        }
        (self.acc & ((1u64 << count) - 1)) as u32
    }

    /// Consume `count` bits previously peeked. Errors if the stream
    /// holds fewer than `count` bits.
    #[inline]
    pub fn consume(&mut self, count: u32) -> Result<(), CodecError> {
        if self.nbits < count {
            self.refill();
            if self.nbits < count {
                return Err(CodecError::UnexpectedEof);
            }
        }
        self.acc >>= count;
        self.nbits -= count;
        Ok(())
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Read whole bytes; the reader must be byte-aligned.
    pub fn read_bytes(&mut self, buf: &mut [u8]) -> Result<(), CodecError> {
        assert_eq!(self.nbits % 8, 0, "read_bytes requires byte alignment");
        for slot in buf.iter_mut() {
            if self.nbits >= 8 {
                *slot = self.acc as u8;
                self.acc >>= 8;
                self.nbits -= 8;
            } else if self.pos < self.data.len() {
                *slot = self.data[self.pos];
                self.pos += 1;
            } else {
                return Err(CodecError::UnexpectedEof);
            }
        }
        Ok(())
    }

    /// Bytes not yet consumed (after the bit cursor), for trailing data
    /// such as checksums.
    pub fn remaining_bytes(&mut self) -> &'a [u8] {
        self.align_to_byte();
        // Return buffered whole bytes plus the unread tail. Buffered
        // bytes were already taken out of `data`, so step back.
        let buffered = (self.nbits / 8) as usize;
        &self.data[self.pos - buffered..]
    }
}

/// Writes bits MSB-first within each output byte (bzip2 order).
#[derive(Debug, Default)]
pub struct MsbBitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl MsbBitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer whose output buffer starts with `prefix` bytes.
    pub fn with_prefix(prefix: Vec<u8>) -> Self {
        MsbBitWriter {
            out: prefix,
            acc: 0,
            nbits: 0,
        }
    }

    /// Append the low `count` bits of `bits`, most significant first.
    #[inline]
    pub fn write_bits(&mut self, bits: u32, count: u32) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || bits < (1u32 << count));
        self.acc = (self.acc << count) | bits as u64;
        self.nbits += count;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }

    /// Flush (zero-padding the final byte) and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.out.push(self.acc as u8);
            self.nbits = 0;
        }
        self.out
    }
}

/// Reads bits MSB-first within each byte (bzip2 order).
#[derive(Debug)]
pub struct MsbBitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> MsbBitReader<'a> {
    /// Wrap a byte slice for bit-level reading.
    pub fn new(data: &'a [u8]) -> Self {
        MsbBitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Read `count` bits (0 ≤ count ≤ 32), first stream bit becomes the
    /// MSB of the result.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u32, CodecError> {
        debug_assert!(count <= 32);
        while self.nbits < count {
            if self.pos >= self.data.len() {
                return Err(CodecError::UnexpectedEof);
            }
            self.acc = (self.acc << 8) | self.data[self.pos] as u64;
            self.pos += 1;
            self.nbits += 8;
        }
        self.nbits -= count;
        let bits = (self.acc >> self.nbits) as u32 & mask32(count);
        Ok(bits)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, CodecError> {
        self.read_bits(1)
    }

    /// Bits left in the stream (accumulator + unread bytes). Decoders
    /// use this to reject length fields that claim more symbols than
    /// the remaining stream could possibly encode.
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        self.nbits as usize + (self.data.len() - self.pos) * 8
    }
}

#[inline]
fn mask32(count: u32) -> u32 {
    if count == 32 {
        u32::MAX
    } else {
        (1u32 << count) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsb_single_bits_round_trip() {
        let mut w = LsbBitWriter::new();
        let pattern = [1u32, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bits(b, 1);
        }
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn lsb_multi_bit_fields_round_trip() {
        let mut w = LsbBitWriter::new();
        let fields = [
            (0x5u32, 3),
            (0x1ff, 9),
            (0x0, 1),
            (0xffff_ffff, 32),
            (0x2a, 7),
        ];
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n).unwrap(), v, "field of {n} bits");
        }
    }

    #[test]
    fn lsb_bit_order_matches_deflate_convention() {
        // RFC 1951: the first bit written lands in the LSB of the first
        // byte. Writing 1,0,0,0,0,0,0,0 must yield 0x01.
        let mut w = LsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 7);
        assert_eq!(w.finish(), vec![0x01]);
    }

    #[test]
    fn lsb_align_and_bytes() {
        let mut w = LsbBitWriter::new();
        w.write_bits(0b101, 3);
        w.align_to_byte();
        w.write_bytes(&[0xde, 0xad]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b101, 0xde, 0xad]);

        let mut r = LsbBitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        r.align_to_byte();
        let mut buf = [0u8; 2];
        r.read_bytes(&mut buf).unwrap();
        assert_eq!(buf, [0xde, 0xad]);
    }

    #[test]
    fn lsb_reader_eof_is_detected() {
        let mut r = LsbBitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
        assert_eq!(r.read_bits(1), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn lsb_remaining_bytes_accounts_for_buffered_data() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        let mut r = LsbBitReader::new(&data);
        assert_eq!(r.read_bits(8).unwrap(), 0x01);
        // The reader prefetches aggressively; remaining_bytes must still
        // report everything after the logical cursor.
        assert_eq!(r.remaining_bytes(), &data[1..]);
    }

    #[test]
    fn msb_bit_order_matches_bzip2_convention() {
        // First bit written lands in the MSB of the first byte.
        let mut w = MsbBitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 7);
        assert_eq!(w.finish(), vec![0x80]);
    }

    #[test]
    fn msb_fields_round_trip() {
        let mut w = MsbBitWriter::new();
        let fields = [
            (0x5u32, 3),
            (0x1ff, 9),
            (0x0, 1),
            (0xdead_beef, 32),
            (0x2a, 7),
        ];
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = MsbBitReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read_bits(n).unwrap(), v, "field of {n} bits");
        }
    }

    #[test]
    fn msb_reader_eof_is_detected() {
        let mut r = MsbBitReader::new(&[0b1010_0000]);
        assert_eq!(r.read_bits(4).unwrap(), 0b1010);
        assert_eq!(r.read_bits(4).unwrap(), 0);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn writers_report_bit_len() {
        let mut w = LsbBitWriter::new();
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
        let mut m = MsbBitWriter::new();
        m.write_bits(0, 13);
        assert_eq!(m.bit_len(), 13);
    }

    #[test]
    fn empty_streams_are_fine() {
        assert!(LsbBitWriter::new().finish().is_empty());
        assert!(MsbBitWriter::new().finish().is_empty());
        let mut r = LsbBitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }
}
