//! Mixed-workload soak harness for `isobar serve`.
//!
//! FCBench's observation motivates this: throughput claims for a
//! compression service only hold up under cross-domain concurrent
//! client traffic. [`run_soak`] starts an in-process daemon on an
//! ephemeral port and drives it with N client threads, each doing a
//! put-then-get-and-verify loop under its own tenant. Latencies are
//! collected per request; `Busy` answers are counted and retried with
//! backoff (that is the protocol's backpressure working, not an
//! error); any other surprise is an error that fails the soak.

use isobar_server::{serve, Client, ServeOptions, ServeReport, Status};
use std::time::{Duration, Instant};

/// Knobs for one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Put/get iterations per client.
    pub iters: usize,
    /// Payload bytes per put (width-8 elements).
    pub payload_bytes: usize,
    /// Server options for the in-process daemon.
    pub server: ServeOptions,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 32,
            iters: 8,
            payload_bytes: 256 * 1024,
            server: ServeOptions::default(),
        }
    }
}

/// What a soak run measured.
#[derive(Debug)]
pub struct SoakReport {
    /// Application payload throughput (put + get bytes over wall
    /// time), in MB/s.
    pub mbps: f64,
    /// Total payload bytes moved (puts + verified gets).
    pub total_bytes: usize,
    /// Wall-clock seconds for the whole mixed phase.
    pub wall_secs: f64,
    /// Successful puts across all clients.
    pub puts: u64,
    /// Successful, bit-verified gets across all clients.
    pub gets: u64,
    /// `Busy` answers (each was retried until it succeeded).
    pub busy_retries: u64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Protocol/data errors observed by clients (must be empty for a
    /// passing soak).
    pub errors: Vec<String>,
    /// The daemon's own accounting after the graceful drain.
    pub server: ServeReport,
}

/// Deterministic pseudo-data with enough byte-column structure that
/// the ISOBAR pipeline exercises its real compress path (a pure
/// counter would be degenerate, pure noise would all go verbatim).
fn payload(client: usize, iter: usize, len: usize) -> Vec<u8> {
    let mut state = (client as u64) << 32 | iter as u64 | 1;
    let mut out = Vec::with_capacity(len);
    let mut value = 0i64;
    while out.len() < len {
        // xorshift noise in the low bytes, a slow ramp in the high
        // bytes — the usual "smooth signal + sensor noise" shape.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        value += (state % 1024) as i64 - 511;
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Run one client's mixed put/get loop. Returns
/// `(latencies_nanos, puts, gets, busy_retries, errors)`.
fn client_loop(
    addr: std::net::SocketAddr,
    client_id: usize,
    config: &SoakConfig,
) -> (Vec<u64>, u64, u64, u64, Vec<String>) {
    let mut latencies = Vec::with_capacity(config.iters * 2);
    let mut puts = 0u64;
    let mut gets = 0u64;
    let mut busy = 0u64;
    let mut errors = Vec::new();
    let tenant = format!("tenant{client_id}");
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => return (latencies, puts, gets, busy, vec![format!("connect: {e}")]),
    };
    for iter in 0..config.iters {
        let name = format!("var{}", iter % 4);
        let step = iter as u32;
        let data = payload(client_id, iter, config.payload_bytes);

        // Put, retrying through Busy with backoff.
        let mut attempt = 0u32;
        loop {
            let start = Instant::now();
            match client.put(&tenant, step, &name, 8, data.clone()) {
                Ok(resp) if resp.status == Status::Ok => {
                    latencies.push(start.elapsed().as_nanos() as u64);
                    puts += 1;
                    break;
                }
                Ok(resp) if resp.status == Status::Busy => {
                    busy += 1;
                    attempt += 1;
                    if attempt > 1000 {
                        errors.push(format!("client {client_id}: put never admitted"));
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2 * u64::from(attempt.min(25))));
                }
                Ok(resp) => {
                    errors.push(format!(
                        "client {client_id} iter {iter}: put answered {:?}: {}",
                        resp.status,
                        String::from_utf8_lossy(&resp.payload)
                    ));
                    break;
                }
                Err(e) => {
                    errors.push(format!("client {client_id} iter {iter}: put failed: {e}"));
                    return (latencies, puts, gets, busy, errors);
                }
            }
        }

        // Get back and verify bit-exactness.
        let start = Instant::now();
        match client.get(&tenant, step, &name) {
            Ok(resp) if resp.status == Status::Ok => {
                latencies.push(start.elapsed().as_nanos() as u64);
                if resp.payload != data {
                    errors.push(format!(
                        "client {client_id} iter {iter}: get returned {} bytes, wanted {}",
                        resp.payload.len(),
                        data.len()
                    ));
                } else {
                    gets += 1;
                }
            }
            Ok(resp) => errors.push(format!(
                "client {client_id} iter {iter}: get answered {:?}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.payload)
            )),
            Err(e) => {
                errors.push(format!("client {client_id} iter {iter}: get failed: {e}"));
                return (latencies, puts, gets, busy, errors);
            }
        }
    }
    (latencies, puts, gets, busy, errors)
}

/// Nearest-rank percentile (the `ceil(p·n)`-th smallest sample) in
/// milliseconds. Unlike rounding an interpolated index, nearest rank
/// always answers an observed sample and `p = 1.0` is exactly the
/// maximum.
fn percentile(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_nanos.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted_nanos.len()) - 1;
    sorted_nanos[idx] as f64 / 1e6
}

/// Start a daemon over `dir`, run the mixed workload, drain, and
/// report. The directory is created if missing and left committed (a
/// caller that wants a scratch run should remove it afterwards).
pub fn run_soak(dir: &std::path::Path, config: &SoakConfig) -> Result<SoakReport, String> {
    let server = serve(dir, "127.0.0.1:0", None, config.server.clone())
        .map_err(|e| format!("soak server failed to start: {e}"))?;
    let addr = server.local_addr();

    let start = Instant::now();
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client_id| scope.spawn(move || client_loop(addr, client_id, config)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    server.shutdown();
    let report = server
        .join()
        .map_err(|e| format!("soak server failed to drain: {e}"))?;

    let mut latencies = Vec::new();
    let mut puts = 0u64;
    let mut gets = 0u64;
    let mut busy = 0u64;
    let mut errors = Vec::new();
    for (lat, p, g, b, errs) in results {
        latencies.extend(lat);
        puts += p;
        gets += g;
        busy += b;
        errors.extend(errs);
    }
    latencies.sort_unstable();
    let total_bytes = (puts + gets) as usize * config.payload_bytes;
    Ok(SoakReport {
        mbps: crate::mbps(total_bytes, wall_secs),
        total_bytes,
        wall_secs,
        puts,
        gets,
        busy_retries: busy,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        errors,
        server: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        // 10 samples, 1..=10 ms: the textbook nearest-rank answers.
        let nanos: Vec<u64> = (1..=10).map(|ms| ms * 1_000_000).collect();
        assert_eq!(percentile(&nanos, 0.50), 5.0); // ceil(0.5·10) = 5th
        assert_eq!(percentile(&nanos, 0.90), 9.0); // ceil(0.9·10) = 9th
        assert_eq!(percentile(&nanos, 0.99), 10.0); // ceil(9.9) = 10th
        assert_eq!(percentile(&nanos, 1.00), 10.0); // the maximum
        // A single sample answers itself at every percentile.
        assert_eq!(percentile(&[2_000_000], 0.50), 2.0);
        assert_eq!(percentile(&[2_000_000], 0.99), 2.0);
        // Empty input answers zero, no panic.
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn small_soak_is_clean() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-soak-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = SoakConfig {
            clients: 4,
            iters: 2,
            payload_bytes: 16 * 1024,
            server: ServeOptions {
                shards: 2,
                ..Default::default()
            },
        };
        let report = run_soak(&dir, &config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.puts, 8);
        assert_eq!(report.gets, 8);
        assert_eq!(report.server.protocol_errors, 0);
        assert!(report.server.commits >= 1, "drain commits");
        assert!(report.mbps > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
