//! In-situ checkpoint compression across simulation time steps.
//!
//! Run with: `cargo run --release --example checkpoint_pipeline`
//!
//! Models the paper's §III.F experiment: a long-running fusion
//! simulation (GTS) emits checkpoint data every few time steps; the
//! compressor must behave *consistently* across the whole run — same
//! EUPA decision, stable compression ratio and throughput — because a
//! checkpoint pipeline cannot afford per-step surprises.

use isobar::{EupaSelector, IsobarCompressor, IsobarOptions, Preference};
use isobar_datasets::catalog;

const TIME_STEPS: usize = 12;
const ELEMENTS_PER_STEP: usize = 150_000; // ≈ 1.2 MB per checkpoint

fn main() {
    let spec = catalog::spec("gts_chkp_zion").expect("catalog entry");
    let isobar = IsobarCompressor::new(IsobarOptions {
        preference: Preference::Speed,
        eupa: EupaSelector {
            sample_elements: 8192,
            sample_blocks: 4,
            ..Default::default()
        },
        ..Default::default()
    });

    println!(
        "checkpoint pipeline: {} time steps of {} doubles",
        TIME_STEPS, ELEMENTS_PER_STEP
    );
    println!(
        "{:<6} {:>9} {:>9} {:>7} {:>10} {:>8} {:>6}",
        "step", "in (B)", "out (B)", "CR", "TP (MB/s)", "codec", "lin"
    );

    let mut ratios = Vec::new();
    let mut throughputs = Vec::new();
    let mut total_in = 0usize;
    let mut total_out = 0usize;

    for step in 0..TIME_STEPS {
        // Each step is a fresh field realization (different seed), as
        // successive checkpoints of an evolving simulation are.
        let ds = spec.generate(ELEMENTS_PER_STEP, 1000 + step as u64);
        let (packed, report) = isobar
            .compress_with_report(&ds.bytes, ds.width())
            .expect("aligned input");

        // A checkpoint that cannot be restored is worse than none.
        assert_eq!(isobar.decompress(&packed).expect("container"), ds.bytes);

        println!(
            "{:<6} {:>9} {:>9} {:>7.3} {:>10.1} {:>8} {:>6}",
            step,
            ds.bytes.len(),
            packed.len(),
            report.ratio(),
            report.throughput_mbps(),
            report.codec.name(),
            report.linearization,
        );
        ratios.push(report.ratio());
        throughputs.push(report.throughput_mbps());
        total_in += ds.bytes.len();
        total_out += packed.len();
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let stddev = |xs: &[f64]| {
        let m = mean(xs);
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    };

    println!("---");
    println!(
        "whole run: {} -> {} bytes (CR {:.3})",
        total_in,
        total_out,
        total_in as f64 / total_out as f64
    );
    println!(
        "CR  per step: mean {:.3}, stddev {:.4} ({:.2}% of mean)",
        mean(&ratios),
        stddev(&ratios),
        stddev(&ratios) / mean(&ratios) * 100.0
    );
    println!(
        "TP  per step: mean {:.1} MB/s, stddev {:.2}",
        mean(&throughputs),
        stddev(&throughputs)
    );
    println!("(the paper reports the same stability: ΔCR stddev ≈ 2% over a GTS run)");
}
