//! Criterion microbenches for the runtime-dispatched SIMD kernels:
//! each hot-loop kernel measured under every tier this machine can run
//! (`scalar` always, plus the detected SSE2/AVX2 tier), so a `bench`
//! run shows the per-kernel speedup behind the pipeline numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use isobar_simd::transpose::StreamLayout;
use isobar_simd::{adler, hist, memcmp, testable_tiers, transpose, xxh64};

/// Same shape as the pipeline bench corpus: 375 000 × 8-byte elements.
const ELEMS: usize = 375_000;
const WIDTH: usize = 8;

fn test_data() -> Vec<u8> {
    let mut state = 0x15_0BA2u64 | 1;
    (0..ELEMS * WIDTH)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

fn bench_hist(c: &mut Criterion) {
    let data = test_data();
    let mut group = c.benchmark_group("kernel_hist");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for tier in testable_tiers() {
        let mut out = Vec::new();
        group.bench_function(&format!("histogram/{}", tier.name()), |b| {
            b.iter(|| hist::byte_column_histograms(tier, &data, WIDTH, &mut out))
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let data = test_data();
    // Table-V-ish split: half the columns compressible, half noise.
    let c_cols: Vec<usize> = (0..WIDTH / 2).collect();
    let i_cols: Vec<usize> = (WIDTH / 2..WIDTH).collect();
    let mut c_stream = vec![0u8; ELEMS * c_cols.len()];
    let mut i_stream = vec![0u8; ELEMS * i_cols.len()];

    let mut group = c.benchmark_group("kernel_partition");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for tier in testable_tiers() {
        group.bench_function(&format!("gather/{}", tier.name()), |b| {
            b.iter(|| {
                transpose::partition2(
                    tier,
                    &data,
                    WIDTH,
                    &c_cols,
                    StreamLayout::ColumnMajor,
                    &mut c_stream,
                    &i_cols,
                    &mut i_stream,
                )
            })
        });
        let mut out = vec![0u8; data.len()];
        group.bench_function(&format!("scatter/{}", tier.name()), |b| {
            b.iter(|| {
                transpose::reassemble2(
                    tier,
                    &c_stream,
                    &c_cols,
                    StreamLayout::ColumnMajor,
                    &i_stream,
                    &i_cols,
                    WIDTH,
                    &mut out,
                )
            })
        });
    }
    group.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let data = test_data();
    let mut out = vec![0u8; data.len()];
    let mut group = c.benchmark_group("kernel_shuffle");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for tier in testable_tiers() {
        group.bench_function(&format!("shuffle/{}", tier.name()), |b| {
            b.iter(|| transpose::shuffle_into(tier, &data, WIDTH, &mut out))
        });
        group.bench_function(&format!("unshuffle/{}", tier.name()), |b| {
            b.iter(|| transpose::unshuffle_into(tier, &data, WIDTH, &mut out))
        });
    }
    group.finish();
}

fn bench_xxh64(c: &mut Criterion) {
    let data = test_data();
    let mut group = c.benchmark_group("kernel_xxh64");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for tier in testable_tiers() {
        group.bench_function(&format!("stripes/{}", tier.name()), |b| {
            b.iter(|| {
                let mut v = [1u64, 2, 3, 4];
                xxh64::consume_stripes(tier, &mut v, &data);
                v
            })
        });
    }
    group.finish();
}

fn bench_memcmp(c: &mut Criterion) {
    // LZ77 longest-match shape: long equal run, then a divergence.
    let a = vec![0x42u8; 4096];
    let mut b = a.clone();
    b[4000] ^= 0xFF;
    let mut group = c.benchmark_group("kernel_memcmp");
    group.throughput(Throughput::Bytes(4000));
    for tier in testable_tiers() {
        group.bench_function(&format!("common_prefix/{}", tier.name()), |b2| {
            b2.iter(|| memcmp::common_prefix(tier, &a, &b))
        });
    }
    group.finish();
}

fn bench_adler(c: &mut Criterion) {
    let data = test_data();
    let mut group = c.benchmark_group("kernel_adler32");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for tier in testable_tiers() {
        group.bench_function(&format!("fold/{}", tier.name()), |b| {
            b.iter(|| adler::fold(tier, 1, 0, &data))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hist,
    bench_partition,
    bench_shuffle,
    bench_xxh64,
    bench_memcmp,
    bench_adler
);
criterion_main!(benches);
