//! End-to-end checks that the telemetry snapshot produced by the
//! pipeline covers every stage and stays consistent across execution
//! strategies (serial vs parallel workers).

use isobar::telemetry::{Counter, Stage, ENABLED};
use isobar::{IsobarCompressor, IsobarOptions, Preference, Recorder};

/// Mixed data: high byte-columns predictable, low columns noisy —
/// the ISOBAR sweet spot, so both partitions are exercised.
fn mixed_data(elements: usize) -> Vec<u8> {
    (0..elements as u64)
        .flat_map(|i| ((i / 7) << 32 | (i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF)).to_le_bytes())
        .collect()
}

fn compressor(parallel: bool) -> IsobarCompressor {
    IsobarCompressor::new(IsobarOptions {
        preference: Preference::Speed,
        chunk_elements: 4096,
        parallel,
        ..Default::default()
    })
}

#[test]
fn report_snapshot_covers_every_stage() {
    let data = mixed_data(20_000);
    let isobar = compressor(false);
    let (packed, report) = isobar.compress_with_report(&data, 8).unwrap();
    let snap = &report.telemetry;

    if !ENABLED {
        assert!(snap.is_empty(), "telemetry-off build must record nothing");
        return;
    }

    // Analyzer: one pass per chunk, every byte seen, all 8 columns
    // classified per chunk.
    let chunks = report.chunks.len() as u64;
    assert!(chunks >= 2, "want multiple chunks, got {chunks}");
    assert_eq!(snap.counter(Counter::AnalyzerChunks), chunks);
    assert_eq!(snap.counter(Counter::AnalyzerBytes), data.len() as u64);
    assert_eq!(
        snap.counter(Counter::ColumnsCompressible) + snap.counter(Counter::ColumnsIncompressible),
        chunks * 8,
    );
    let margin_samples: u64 = snap.tau_margin.iter().sum();
    assert_eq!(margin_samples, chunks * 8);

    // Partitioner: compressible + verbatim bytes account for every
    // partitioned chunk's input.
    assert!(snap.counter(Counter::PartitionVerbatimBytes) > 0);
    assert!(snap.counter(Counter::PartitionCompressibleBytes) > 0);

    // EUPA ran once and timed all four candidate combinations.
    assert_eq!(snap.counter(Counter::EupaRuns), 1);
    assert_eq!(snap.eupa_selected.iter().sum::<u64>(), 1);
    assert!(snap.eupa_trial_count.iter().all(|&n| n >= 1));

    // Chunk pipeline counters and stage timers.
    assert_eq!(snap.counter(Counter::ChunksCompressed), chunks);
    assert_eq!(snap.counter(Counter::ChunkInputBytes), data.len() as u64);
    // Per-chunk output counts headers + payloads; only the top-level
    // container header sits outside any chunk.
    assert_eq!(
        snap.counter(Counter::ChunkOutputBytes) as usize + isobar::container::HEADER_LEN,
        packed.len(),
    );
    assert_eq!(snap.stage(Stage::Analyze).count, chunks);
    assert_eq!(snap.stage(Stage::SolverCompress).count, chunks);
    assert_eq!(snap.stage(Stage::EupaSelect).count, 1);
    assert_eq!(snap.stage(Stage::ContainerWrite).count, 1);

    // Container accounting matches the real header overhead.
    let payload: u64 = report
        .chunks
        .iter()
        .map(|c| (c.compressed_len + c.incompressible_len) as u64)
        .sum();
    assert_eq!(
        snap.counter(Counter::ContainerMetadataBytes) + payload,
        packed.len() as u64,
    );

    // Decompression side.
    let mut rec = Recorder::new();
    let mut scratch = isobar::PipelineScratch::new();
    let restored = isobar
        .decompress_recorded(&packed, &mut scratch, &mut rec)
        .unwrap();
    assert_eq!(restored, data);
    let dsnap = rec.snapshot();
    assert_eq!(dsnap.counter(Counter::ChunksDecompressed), chunks);
    assert_eq!(dsnap.counter(Counter::ChunkDecodedBytes), data.len() as u64);
    assert_eq!(dsnap.stage(Stage::ContainerRead).count, 1);
    assert!(dsnap.stage(Stage::SolverDecompress).count >= 1);
}

#[test]
fn parallel_and_serial_totals_agree() {
    // Preference::Ratio so EUPA picks by sample ratio, which is a pure
    // function of the data; Speed picks by measured wall-clock
    // throughput, which can flip between runs on a loaded machine and
    // would legitimately change the byte counters.
    let ratio_compressor = |parallel| {
        IsobarCompressor::new(IsobarOptions {
            preference: Preference::Ratio,
            chunk_elements: 4096,
            parallel,
            ..Default::default()
        })
    };
    let data = mixed_data(30_000);
    let (_, serial) = ratio_compressor(false)
        .compress_with_report(&data, 8)
        .unwrap();
    let (_, parallel) = ratio_compressor(true)
        .compress_with_report(&data, 8)
        .unwrap();

    if !ENABLED {
        assert!(serial.telemetry.is_empty() && parallel.telemetry.is_empty());
        return;
    }

    // Wall-clock timings differ run to run, but every byte/count
    // counter and histogram must be identical regardless of worker
    // scheduling — the merge is commutative.
    for c in Counter::ALL {
        if matches!(c, Counter::ScratchReuseHits | Counter::ScratchReuseMisses) {
            // Workers each warm their own scratch, so hit/miss split
            // differs; only the total is scheduling-independent.
            continue;
        }
        assert_eq!(
            serial.telemetry.counter(c),
            parallel.telemetry.counter(c),
            "counter {} diverged between serial and parallel",
            c.name(),
        );
    }
    assert_eq!(
        serial.telemetry.counter(Counter::ScratchReuseHits)
            + serial.telemetry.counter(Counter::ScratchReuseMisses),
        parallel.telemetry.counter(Counter::ScratchReuseHits)
            + parallel.telemetry.counter(Counter::ScratchReuseMisses),
    );
    assert_eq!(serial.telemetry.tau_margin, parallel.telemetry.tau_margin);
    assert_eq!(
        serial.telemetry.eupa_selected,
        parallel.telemetry.eupa_selected
    );
}

#[test]
fn recorded_compress_accumulates_across_calls() {
    let data = mixed_data(8_192);
    let isobar = compressor(false);
    let mut scratch = isobar::PipelineScratch::new();
    let mut rec = Recorder::new();
    let packed = isobar
        .compress_recorded(&data, 8, &mut scratch, &mut rec)
        .unwrap();
    isobar
        .compress_recorded(&data, 8, &mut scratch, &mut rec)
        .unwrap();
    let snap = rec.snapshot();

    if !ENABLED {
        assert!(snap.is_empty());
        return;
    }
    assert_eq!(snap.counter(Counter::EupaRuns), 2);
    assert_eq!(snap.counter(Counter::AnalyzerBytes), 2 * data.len() as u64);
    assert_eq!(isobar.decompress(&packed).unwrap(), data);
}

#[test]
fn stream_writer_and_reader_expose_telemetry() {
    use isobar::stream::{STREAM_HEADER_LEN, STREAM_TRAILER_LEN};
    use isobar::{IsobarReader, IsobarWriter};
    use std::io::Write;

    let data = mixed_data(12_000);
    let mut writer = IsobarWriter::new(
        Vec::new(),
        8,
        IsobarOptions {
            preference: Preference::Speed,
            chunk_elements: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    writer.write_all(&data).unwrap();
    let (encoded, wsnap) = writer.finish_with_telemetry().unwrap();

    let mut reader = IsobarReader::new(&encoded[..]).unwrap();
    let mut restored = Vec::new();
    std::io::Read::read_to_end(&mut reader, &mut restored).unwrap();
    assert_eq!(restored, data);
    let rsnap = reader.telemetry();

    if !ENABLED {
        assert!(wsnap.is_empty() && rsnap.is_empty());
        return;
    }
    let chunks = wsnap.counter(Counter::StreamChunksWritten);
    assert!(chunks >= 2, "want multiple stream chunks, got {chunks}");
    assert_eq!(rsnap.counter(Counter::StreamChunksRead), chunks);
    // Writer and reader see the same framing overhead: header +
    // per-chunk marker/header + trailer.
    assert_eq!(
        wsnap.counter(Counter::StreamMetadataBytes),
        rsnap.counter(Counter::StreamMetadataBytes),
    );
    let payload: u64 = encoded.len() as u64
        - (STREAM_HEADER_LEN + STREAM_TRAILER_LEN) as u64
        - chunks * (1 + isobar::container::CHUNK_HEADER_LEN as u64);
    assert_eq!(
        wsnap.counter(Counter::StreamMetadataBytes) + payload,
        encoded.len() as u64,
    );
    assert_eq!(wsnap.counter(Counter::ChunksCompressed), chunks);
    assert_eq!(rsnap.counter(Counter::ChunksDecompressed), chunks);
    assert_eq!(rsnap.counter(Counter::ChunkDecodedBytes), data.len() as u64);
}
