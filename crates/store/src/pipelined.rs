//! Pipelined store writer: compression overlapped with the producer.
//!
//! The in-situ pattern the paper targets: the simulation must not
//! stall while its checkpoint compresses. [`PipelinedStoreWriter`]
//! hands each variable to a background worker over a bounded queue and
//! returns immediately; the worker runs the ISOBAR pipeline and
//! appends to the store file. The producer only blocks when it
//! out-runs the compressor by more than the queue depth — exactly the
//! back-pressure an in-situ pipeline wants.

use crate::error::StoreError;
use crate::format::IndexEntry;
use crate::writer::StoreWriter;
use isobar::IsobarOptions;
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

struct Job {
    step: u32,
    name: String,
    data: Vec<u8>,
    width: usize,
}

/// How a pipelined worker failed, carrying everything it had done by
/// the time it stopped.
///
/// When a producer job fails mid-stream (a duplicate put, a codec
/// error), the records written before the failure are not lost: the
/// worker attempts to commit them and hands their index back here, so
/// a caller — or `isobar salvage` — can account for exactly what made
/// it to disk instead of discarding the whole run.
#[derive(Debug)]
pub struct PipelinedWorkerError {
    /// What stopped the worker.
    pub error: StoreError,
    /// Index entries written before the failure, in arrival order.
    pub partial_index: Vec<IndexEntry>,
    /// Whether the partial store was successfully committed to its
    /// final name (when false, nothing reached disk durably).
    pub committed: bool,
}

impl std::fmt::Display for PipelinedWorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pipelined store worker failed after {} committed entr{}: {}",
            self.partial_index.len(),
            if self.partial_index.len() == 1 {
                "y"
            } else {
                "ies"
            },
            self.error
        )
    }
}

impl std::error::Error for PipelinedWorkerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A [`StoreWriter`] fronted by a bounded queue and a worker thread.
///
/// # Example
///
/// ```no_run
/// use isobar_store::PipelinedStoreWriter;
/// use isobar::IsobarOptions;
///
/// # fn demo(density: Vec<u8>) -> Result<(), isobar_store::StoreError> {
/// let writer = PipelinedStoreWriter::create("run.isst", IsobarOptions::default(), 2)?;
/// writer.put(0, "density", density, 8)?; // returns before compression finishes
/// let entries = writer.close()?; // drains the queue and commits
/// assert_eq!(entries.len(), 1);
/// # Ok(()) }
/// ```
pub struct PipelinedStoreWriter {
    tx: Option<SyncSender<Job>>,
    worker: Option<JoinHandle<Result<Vec<IndexEntry>, PipelinedWorkerError>>>,
}

impl PipelinedStoreWriter {
    /// Create a store at `path`; up to `queue_depth` variables may be
    /// in flight before [`PipelinedStoreWriter::put`] blocks.
    pub fn create(
        path: impl AsRef<Path>,
        options: IsobarOptions,
        queue_depth: usize,
    ) -> Result<Self, StoreError> {
        let mut writer = StoreWriter::create(path, options)?;
        let (tx, rx) = sync_channel::<Job>(queue_depth.max(1));
        let worker = std::thread::spawn(move || {
            for job in rx {
                if let Err(error) = writer.put(job.step, &job.name, &job.data, job.width) {
                    // Don't discard what the worker already wrote:
                    // commit the good records and surface their index
                    // alongside the error.
                    let partial_index = writer.entries().to_vec();
                    let committed = writer.close().is_ok();
                    return Err(PipelinedWorkerError {
                        error,
                        partial_index,
                        committed,
                    });
                }
            }
            let entries = writer.entries().to_vec();
            match writer.close() {
                Ok(()) => Ok(entries),
                Err(error) => Err(PipelinedWorkerError {
                    error,
                    partial_index: entries,
                    committed: false,
                }),
            }
        });
        Ok(PipelinedStoreWriter {
            tx: Some(tx),
            worker: Some(worker),
        })
    }

    /// Queue one variable for compression and storage. Takes ownership
    /// of `data` so the producer can immediately reuse its own buffers.
    ///
    /// Returns an error if the worker has already failed (the detailed
    /// cause is reported by [`PipelinedStoreWriter::close`]).
    pub fn put(
        &self,
        step: u32,
        name: &str,
        data: Vec<u8>,
        width: usize,
    ) -> Result<(), StoreError> {
        let job = Job {
            step,
            name: name.to_string(),
            data,
            width,
        };
        self.tx
            .as_ref()
            .expect("writer already closed")
            .send(job)
            .map_err(|_| StoreError::Corrupt("store worker terminated early"))
    }

    /// Drain the queue, finalize the store, and return its index.
    ///
    /// On failure the partial index is discarded; use
    /// [`PipelinedStoreWriter::close_with_partial`] to keep it.
    pub fn close(self) -> Result<Vec<IndexEntry>, StoreError> {
        self.close_with_partial().map_err(|e| e.error)
    }

    /// [`PipelinedStoreWriter::close`], but a failure carries the
    /// entries written before the error (and whether they were
    /// committed) instead of discarding them.
    pub fn close_with_partial(mut self) -> Result<Vec<IndexEntry>, PipelinedWorkerError> {
        drop(self.tx.take()); // disconnect: the worker drains and exits
        self.worker
            .take()
            .expect("close called once")
            .join()
            .map_err(|_| PipelinedWorkerError {
                error: StoreError::Corrupt("store worker panicked"),
                partial_index: Vec::new(),
                committed: false,
            })?
    }
}

impl Drop for PipelinedStoreWriter {
    fn drop(&mut self) {
        // Disconnect and let the worker finish so a dropped writer does
        // not leave a file mid-write; errors are swallowed here (use
        // close() to observe them).
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StoreReader;
    use isobar::Preference;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-pipelined-{}-{name}", std::process::id()));
        dir
    }

    fn options() -> IsobarOptions {
        IsobarOptions {
            preference: Preference::Speed,
            chunk_elements: 10_000,
            ..Default::default()
        }
    }

    #[test]
    fn pipelined_writes_round_trip() {
        let path = tmp("roundtrip");
        let datasets: Vec<(u32, Vec<u8>)> = (0..6u32)
            .map(|step| {
                let ds = isobar_datasets::catalog::spec("gts_phi_l")
                    .unwrap()
                    .generate(15_000, step as u64);
                (step, ds.bytes)
            })
            .collect();

        let writer = PipelinedStoreWriter::create(&path, options(), 2).unwrap();
        for (step, bytes) in &datasets {
            writer.put(*step, "phi", bytes.clone(), 8).unwrap();
        }
        let entries = writer.close().unwrap();
        assert_eq!(entries.len(), datasets.len());

        let reader = StoreReader::open(&path).unwrap();
        for (step, bytes) in &datasets {
            assert_eq!(&reader.get(*step, "phi").unwrap(), bytes);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_errors_surface_at_close() {
        let path = tmp("dup-error");
        let writer = PipelinedStoreWriter::create(&path, options(), 4).unwrap();
        writer.put(0, "x", vec![0u8; 80], 8).unwrap();
        // Duplicate: the worker fails on this job...
        writer.put(0, "x", vec![0u8; 80], 8).unwrap();
        // ...and close reports it.
        assert!(matches!(writer.close(), Err(StoreError::Duplicate { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn early_error_surfaces_partial_index() {
        let path = tmp("partial-index");
        let writer = PipelinedStoreWriter::create(&path, options(), 4).unwrap();
        writer.put(0, "good", vec![7u8; 800], 8).unwrap();
        // Duplicate: the worker fails on this job, with one good
        // record already written.
        writer.put(0, "good", vec![7u8; 800], 8).unwrap();
        let err = writer.close_with_partial().unwrap_err();
        assert!(matches!(err.error, StoreError::Duplicate { .. }));
        assert_eq!(err.partial_index.len(), 1, "good record's entry survives");
        assert_eq!(err.partial_index[0].name, "good");
        assert!(err.committed, "partial store commits");
        assert!(err.to_string().contains("1 committed entry"), "{err}");
        // The committed partial store really holds the good record.
        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.get(0, "good").unwrap(), vec![7u8; 800]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn put_after_worker_death_errors_rather_than_hangs() {
        let path = tmp("dead-worker");
        let writer = PipelinedStoreWriter::create(&path, options(), 1).unwrap();
        writer.put(0, "x", vec![0u8; 80], 8).unwrap();
        writer.put(0, "x", vec![0u8; 80], 8).unwrap(); // kills the worker
                                                       // Eventually sends start failing (the channel disconnects once
                                                       // the worker exits); loop with a bound so the test cannot hang.
        let mut failed = false;
        for i in 0..1000 {
            if writer.put(1, &format!("y{i}"), vec![0u8; 80], 8).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "puts kept succeeding after worker failure");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropped_writer_does_not_panic() {
        let path = tmp("dropped");
        let writer = PipelinedStoreWriter::create(&path, options(), 2).unwrap();
        writer.put(0, "x", vec![1u8; 800], 8).unwrap();
        drop(writer); // worker drains and closes quietly
        let _ = std::fs::remove_file(&path);
    }
}
