//! Mixed-workload soak harness for `isobar serve`.
//!
//! FCBench's observation motivates this: throughput claims for a
//! compression service only hold up under cross-domain concurrent
//! client traffic. [`run_soak`] starts an in-process daemon on an
//! ephemeral port and drives it with N client threads, each doing a
//! put-then-get-and-verify loop under its own tenant. Latencies are
//! collected per request; `Busy` answers are counted and retried with
//! backoff (that is the protocol's backpressure working, not an
//! error); any other surprise is an error that fails the soak.

use isobar_server::retry::{backoff_delay, RetryPolicy};
use isobar_server::{serve, ChaosConfig, ChaosStream, Client, RetryClient, ServeOptions, ServeReport, Status};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Knobs for one soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Put/get iterations per client.
    pub iters: usize,
    /// Payload bytes per put (width-8 elements).
    pub payload_bytes: usize,
    /// Server options for the in-process daemon.
    pub server: ServeOptions,
    /// When set, every client connection is wrapped in a fault-
    /// injecting [`ChaosStream`] (seeded per client and per reconnect
    /// from this config's seed) and driven through a [`RetryClient`] —
    /// the soak then proves bit-exact end-to-end delivery across a
    /// hostile transport.
    pub chaos: Option<ChaosConfig>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            clients: 32,
            iters: 8,
            payload_bytes: 256 * 1024,
            server: ServeOptions::default(),
            chaos: None,
        }
    }
}

/// The Busy-backoff schedule the plain soak clients use: jittered
/// exponential so a herd of rejected clients does not reconverge on
/// the admission gate in lockstep.
fn soak_policy() -> RetryPolicy {
    RetryPolicy {
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(64),
        max_attempts: 1000,
        deadline: Duration::from_secs(120),
    }
}

/// What a soak run measured.
#[derive(Debug)]
pub struct SoakReport {
    /// Application payload throughput (put + get bytes over wall
    /// time), in MB/s.
    pub mbps: f64,
    /// Total payload bytes moved (puts + verified gets).
    pub total_bytes: usize,
    /// Wall-clock seconds for the whole mixed phase.
    pub wall_secs: f64,
    /// Successful puts across all clients.
    pub puts: u64,
    /// Successful, bit-verified gets across all clients.
    pub gets: u64,
    /// `Busy` answers (each was retried until it succeeded).
    pub busy_retries: u64,
    /// Transport-error reconnects (always zero without chaos).
    pub reconnects: u64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Protocol/data errors observed by clients (must be empty for a
    /// passing soak).
    pub errors: Vec<String>,
    /// The daemon's own accounting after the graceful drain.
    pub server: ServeReport,
}

/// Deterministic pseudo-data with enough byte-column structure that
/// the ISOBAR pipeline exercises its real compress path (a pure
/// counter would be degenerate, pure noise would all go verbatim).
fn payload(client: usize, iter: usize, len: usize) -> Vec<u8> {
    let mut state = (client as u64) << 32 | iter as u64 | 1;
    let mut out = Vec::with_capacity(len);
    let mut value = 0i64;
    while out.len() < len {
        // xorshift noise in the low bytes, a slow ramp in the high
        // bytes — the usual "smooth signal + sensor noise" shape.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        value += (state % 1024) as i64 - 511;
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// One client's accounting, merged into the [`SoakReport`].
#[derive(Default)]
struct ClientOutcome {
    latencies: Vec<u64>,
    puts: u64,
    gets: u64,
    busy: u64,
    reconnects: u64,
    errors: Vec<String>,
}

/// Run one client's mixed put/get loop over a plain connection.
fn client_loop(addr: std::net::SocketAddr, client_id: usize, config: &SoakConfig) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies: Vec::with_capacity(config.iters * 2),
        ..ClientOutcome::default()
    };
    let tenant = format!("tenant{client_id}");
    let policy = soak_policy();
    // Jitter state, seeded per client so schedules decorrelate.
    let mut rng = client_id as u64 ^ 0x5042_AC1E_0000_0001;
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            out.errors.push(format!("connect: {e}"));
            return out;
        }
    };
    for iter in 0..config.iters {
        let name = format!("var{}", iter % 4);
        let step = iter as u32;
        let data = payload(client_id, iter, config.payload_bytes);

        // Put, retrying through Busy with jittered exponential
        // backoff — the protocol's backpressure working, not an error.
        let mut attempt = 0u32;
        loop {
            let start = Instant::now();
            match client.put(&tenant, step, &name, 8, data.clone()) {
                Ok(resp) if resp.status == Status::Ok => {
                    out.latencies.push(start.elapsed().as_nanos() as u64);
                    out.puts += 1;
                    break;
                }
                Ok(resp) if resp.status == Status::Busy => {
                    out.busy += 1;
                    attempt += 1;
                    if attempt > policy.max_attempts {
                        out.errors
                            .push(format!("client {client_id}: put never admitted"));
                        break;
                    }
                    std::thread::sleep(backoff_delay(&policy, attempt, &mut rng));
                }
                Ok(resp) => {
                    out.errors.push(format!(
                        "client {client_id} iter {iter}: put answered {:?}: {}",
                        resp.status,
                        String::from_utf8_lossy(&resp.payload)
                    ));
                    break;
                }
                Err(e) => {
                    out.errors
                        .push(format!("client {client_id} iter {iter}: put failed: {e}"));
                    return out;
                }
            }
        }

        // Get back and verify bit-exactness.
        let start = Instant::now();
        match client.get(&tenant, step, &name) {
            Ok(resp) if resp.status == Status::Ok => {
                out.latencies.push(start.elapsed().as_nanos() as u64);
                if resp.payload != data {
                    out.errors.push(format!(
                        "client {client_id} iter {iter}: get returned {} bytes, wanted {}",
                        resp.payload.len(),
                        data.len()
                    ));
                } else {
                    out.gets += 1;
                }
            }
            Ok(resp) => out.errors.push(format!(
                "client {client_id} iter {iter}: get answered {:?}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.payload)
            )),
            Err(e) => {
                out.errors
                    .push(format!("client {client_id} iter {iter}: get failed: {e}"));
                return out;
            }
        }
    }
    out
}

/// Run one client's mixed put/get loop across a fault-injecting
/// transport, through the retrying client. Every get must still be
/// bit-exact — the chaos layer may reset, stall, and fragment, but it
/// never corrupts, so any data mismatch is a real protocol bug.
fn chaos_client_loop(
    addr: std::net::SocketAddr,
    client_id: usize,
    config: &SoakConfig,
    chaos: ChaosConfig,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies: Vec::with_capacity(config.iters * 2),
        ..ClientOutcome::default()
    };
    let tenant = format!("tenant{client_id}");
    // Every reconnect gets an unrelated fault schedule.
    let mut conn_seq = 0u64;
    let mut client = RetryClient::new(soak_policy(), client_id as u64, move || {
        conn_seq += 1;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let cfg = ChaosConfig {
            seed: chaos.seed ^ ((client_id as u64) << 32) ^ conn_seq,
            ..chaos
        };
        Ok(Client::from_stream(ChaosStream::new(stream, cfg)))
    });
    for iter in 0..config.iters {
        let name = format!("var{}", iter % 4);
        let step = iter as u32;
        let data = payload(client_id, iter, config.payload_bytes);

        let start = Instant::now();
        match client.put(&tenant, step, &name, 8, &data) {
            Ok(resp) if resp.status == Status::Ok => {
                out.latencies.push(start.elapsed().as_nanos() as u64);
                out.puts += 1;
            }
            Ok(resp) => {
                out.errors.push(format!(
                    "client {client_id} iter {iter}: put answered {:?}: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.payload)
                ));
                continue;
            }
            Err(e) => {
                out.errors
                    .push(format!("client {client_id} iter {iter}: put failed: {e}"));
                break;
            }
        }

        let start = Instant::now();
        match client.get(&tenant, step, &name) {
            Ok(resp) if resp.status == Status::Ok => {
                out.latencies.push(start.elapsed().as_nanos() as u64);
                if resp.payload != data {
                    out.errors.push(format!(
                        "client {client_id} iter {iter}: get returned {} bytes, wanted {}",
                        resp.payload.len(),
                        data.len()
                    ));
                } else {
                    out.gets += 1;
                }
            }
            Ok(resp) => out.errors.push(format!(
                "client {client_id} iter {iter}: get answered {:?}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.payload)
            )),
            Err(e) => {
                out.errors
                    .push(format!("client {client_id} iter {iter}: get failed: {e}"));
                break;
            }
        }
    }
    out.busy = client.stats.busy_retries;
    out.reconnects = client.stats.reconnects;
    out
}

/// Nearest-rank percentile (the `ceil(p·n)`-th smallest sample) in
/// milliseconds. Unlike rounding an interpolated index, nearest rank
/// always answers an observed sample and `p = 1.0` is exactly the
/// maximum.
fn percentile(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_nanos.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted_nanos.len()) - 1;
    sorted_nanos[idx] as f64 / 1e6
}

/// Start a daemon over `dir`, run the mixed workload, drain, and
/// report. The directory is created if missing and left committed (a
/// caller that wants a scratch run should remove it afterwards).
pub fn run_soak(dir: &std::path::Path, config: &SoakConfig) -> Result<SoakReport, String> {
    let server = serve(dir, "127.0.0.1:0", None, config.server.clone())
        .map_err(|e| format!("soak server failed to start: {e}"))?;
    let addr = server.local_addr();

    let start = Instant::now();
    let results: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client_id| {
                scope.spawn(move || match config.chaos {
                    Some(chaos) => chaos_client_loop(addr, client_id, config, chaos),
                    None => client_loop(addr, client_id, config),
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    server.shutdown();
    let report = server
        .join()
        .map_err(|e| format!("soak server failed to drain: {e}"))?;

    let mut latencies = Vec::new();
    let mut puts = 0u64;
    let mut gets = 0u64;
    let mut busy = 0u64;
    let mut reconnects = 0u64;
    let mut errors = Vec::new();
    for out in results {
        latencies.extend(out.latencies);
        puts += out.puts;
        gets += out.gets;
        busy += out.busy;
        reconnects += out.reconnects;
        errors.extend(out.errors);
    }
    latencies.sort_unstable();
    let total_bytes = (puts + gets) as usize * config.payload_bytes;
    Ok(SoakReport {
        mbps: crate::mbps(total_bytes, wall_secs),
        total_bytes,
        wall_secs,
        puts,
        gets,
        busy_retries: busy,
        reconnects,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        errors,
        server: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        // 10 samples, 1..=10 ms: the textbook nearest-rank answers.
        let nanos: Vec<u64> = (1..=10).map(|ms| ms * 1_000_000).collect();
        assert_eq!(percentile(&nanos, 0.50), 5.0); // ceil(0.5·10) = 5th
        assert_eq!(percentile(&nanos, 0.90), 9.0); // ceil(0.9·10) = 9th
        assert_eq!(percentile(&nanos, 0.99), 10.0); // ceil(9.9) = 10th
        assert_eq!(percentile(&nanos, 1.00), 10.0); // the maximum
        // A single sample answers itself at every percentile.
        assert_eq!(percentile(&[2_000_000], 0.50), 2.0);
        assert_eq!(percentile(&[2_000_000], 0.99), 2.0);
        // Empty input answers zero, no panic.
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn busy_backoff_schedule_doubles_jitters_and_caps() {
        // Satellite of the durability PR: the soak's Busy retry is a
        // jittered exponential, not the old linear ramp. Directed
        // check of the exact schedule shape the clients sleep on.
        let policy = soak_policy();
        let mut rng = 7u64;
        let mut prev_raw = Duration::ZERO;
        for attempt in 1..=12u32 {
            let d = backoff_delay(&policy, attempt, &mut rng);
            let raw = policy
                .base_delay
                .saturating_mul(1 << (attempt - 1).min(20))
                .min(policy.max_delay);
            assert!(d >= raw / 2 && d <= raw, "attempt {attempt}: {d:?} vs {raw:?}");
            assert!(raw >= prev_raw, "schedule must be monotone pre-cap");
            prev_raw = raw;
        }
        // By attempt 6 (2ms · 2^5 = 64ms) the cap is in charge: a
        // stuck client polls steadily instead of sleeping forever.
        assert_eq!(prev_raw, policy.max_delay);
    }

    #[test]
    fn chaos_soak_survives_and_verifies_bit_exact() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-chaos-soak-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = SoakConfig {
            clients: 4,
            iters: 3,
            payload_bytes: 16 * 1024,
            server: ServeOptions {
                shards: 2,
                ..Default::default()
            },
            chaos: Some(ChaosConfig::standard(0xC4A0_5)),
        };
        let report = run_soak(&dir, &config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.puts, 12);
        assert_eq!(report.gets, 12, "every get verified bit-exact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_soak_is_clean() {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-soak-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = SoakConfig {
            clients: 4,
            iters: 2,
            payload_bytes: 16 * 1024,
            server: ServeOptions {
                shards: 2,
                ..Default::default()
            },
            chaos: None,
        };
        let report = run_soak(&dir, &config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.puts, 8);
        assert_eq!(report.gets, 8);
        assert_eq!(report.server.protocol_errors, 0);
        assert!(report.server.commits >= 1, "drain commits");
        assert!(report.mbps > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
